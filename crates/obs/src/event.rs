//! The typed event model: everything a solver, simulator, or
//! replication driver can report, with an NDJSON rendering.

use crate::json::JsonBuf;

/// What kind of simulator activity a [`Event::Sim`] reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimEventKind {
    /// A task entered the system.
    Arrival,
    /// A task finished service.
    Completion,
    /// A steal (or rebalance/share) probe was initiated.
    StealAttempt,
    /// A probe found an eligible victim.
    StealSuccess,
    /// Tasks moved between processors (`count` of them).
    Migration,
}

impl SimEventKind {
    /// Stable wire name used in traces and counter keys.
    pub fn name(self) -> &'static str {
        match self {
            Self::Arrival => "arrival",
            Self::Completion => "completion",
            Self::StealAttempt => "steal_attempt",
            Self::StealSuccess => "steal_success",
            Self::Migration => "migration",
        }
    }
}

/// What stage of a job's lifecycle a [`Event::Job`] reports.
///
/// Job events are the identity-carrying companions of the anonymous
/// [`SimEventKind`] stream: they let a reader reconstruct each job's
/// causal history (arrival → migrations → service → completion) and
/// decompose its sojourn into queue wait, transfer time, and service
/// time. They are only emitted when job tracing is opted into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobEventKind {
    /// The job entered the system.
    Arrival,
    /// The job moved from `src` (victim) to `proc` (thief), taking
    /// `delay` time units in flight (0 for instantaneous moves).
    Migrate,
    /// The job reached the front of a queue and began service.
    ServiceStart,
    /// The job finished service and left the system.
    Completion,
}

impl JobEventKind {
    /// Stable wire name used in traces.
    pub fn name(self) -> &'static str {
        match self {
            Self::Arrival => "job_arrival",
            Self::Migrate => "job_migrate",
            Self::ServiceStart => "job_service_start",
            Self::Completion => "job_completion",
        }
    }
}

/// Deepest tail a [`Event::TailSample`] can carry. The mean-field
/// tails decay geometrically (`λ^i` and faster under stealing), so
/// eight levels reach ~`λ⁸ ≈ 0.43` even at `λ = 0.9` — deep enough
/// for trajectory comparison while keeping the event `Copy`.
pub const TAIL_SAMPLE_DEPTH: usize = 8;

/// One structured observation.
///
/// Events are small `Copy` values so emitting one costs a branch and a
/// few register moves when a recorder is attached, and nothing at all
/// when the hot loop has cached `Recorder::enabled() == false`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Event {
    /// One attempted step of an adaptive ODE integrator.
    SolverStep {
        /// Whether the error controller accepted the step.
        accepted: bool,
        /// Time *before* the step.
        t: f64,
        /// Step size attempted.
        h: f64,
        /// Weighted error-norm estimate (≤ 1 means accepted).
        err_norm: f64,
    },
    /// Steady-state drive progress: the residual after an accepted step.
    SolverSteady {
        /// Integration time.
        t: f64,
        /// `‖dy/dt‖∞` at `t`.
        residual: f64,
    },
    /// End-of-integration summary.
    SolverDone {
        /// Accepted step count.
        accepted: u64,
        /// Rejected step count.
        rejected: u64,
        /// Smallest accepted step size.
        min_h: f64,
        /// Largest accepted step size.
        max_h: f64,
        /// Longest run of consecutive rejections (a stiffness hint when
        /// large).
        max_reject_streak: u64,
        /// Whether a steady-state target (if any) was met.
        converged: bool,
        /// Final residual `‖dy/dt‖∞`.
        residual: f64,
    },
    /// One simulator event.
    Sim {
        /// Event kind.
        kind: SimEventKind,
        /// Simulated time.
        t: f64,
        /// Processor involved (thief for steals, receiver for
        /// migrations).
        proc: u32,
        /// Donor processor for migrations (`None` for other kinds), so
        /// per-processor queue timelines are reconstructible from a
        /// trace alone.
        src: Option<u32>,
        /// Multiplicity (tasks moved for migrations, 1 otherwise).
        count: u32,
    },
    /// One lifecycle stage of an identified job (opt-in job tracing).
    Job {
        /// Lifecycle stage.
        kind: JobEventKind,
        /// Simulated time.
        t: f64,
        /// Stable job identity, unique within one simulation run.
        job: u64,
        /// Processor involved: where the job arrived, the thief for
        /// migrations, where it started service or completed.
        proc: u32,
        /// Victim processor for migrations (`None` for other stages).
        src: Option<u32>,
        /// Transfer delay for migrations (0 when the move is
        /// instantaneous; 0 for other stages).
        delay: f64,
    },
    /// Periodic snapshot of the empirical tail vector `ŝ₁…ŝ_depth`
    /// (opt-in transient sampling): `tails[i-1]` is the instantaneous
    /// fraction of processors with queue depth ≥ `i` at simulated time
    /// `t`. `s₀ = 1` is implicit and never carried.
    TailSample {
        /// Simulated time of the snapshot.
        t: f64,
        /// Tail fractions `ŝ₁…ŝ_depth`; entries past `depth` are 0.
        tails: [f64; TAIL_SAMPLE_DEPTH],
        /// How many leading entries of `tails` are meaningful
        /// (≤ [`TAIL_SAMPLE_DEPTH`]).
        depth: u32,
    },
    /// Periodic progress heartbeat from a long simulation run.
    Heartbeat {
        /// Simulated time.
        t: f64,
        /// Events processed so far in this run.
        events: u64,
        /// Tasks currently in the system.
        tasks_in_system: u64,
    },
    /// One finished replication.
    ReplicateDone {
        /// Seed of the run.
        seed: u64,
        /// Wall-clock duration in milliseconds.
        wall_ms: f64,
        /// Events processed.
        events: u64,
        /// Throughput (events per wall-clock second).
        events_per_sec: f64,
    },
}

impl Event {
    /// Stable wire name of the event type.
    pub fn name(&self) -> &'static str {
        match self {
            Self::SolverStep { .. } => "solver_step",
            Self::SolverSteady { .. } => "solver_steady",
            Self::SolverDone { .. } => "solver_done",
            Self::Sim { kind, .. } => kind.name(),
            Self::Job { kind, .. } => kind.name(),
            Self::TailSample { .. } => "tail_sample",
            Self::Heartbeat { .. } => "heartbeat",
            Self::ReplicateDone { .. } => "replicate_done",
        }
    }

    /// Render the event as a single-line JSON object (no trailing
    /// newline) — the NDJSON wire format.
    pub fn to_json_line(&self) -> String {
        let mut j = JsonBuf::new();
        j.begin_obj().field_str("ev", self.name());
        match *self {
            Self::SolverStep {
                accepted,
                t,
                h,
                err_norm,
            } => {
                j.field_bool("accepted", accepted)
                    .field_f64("t", t)
                    .field_f64("h", h)
                    .field_f64("err_norm", err_norm);
            }
            Self::SolverSteady { t, residual } => {
                j.field_f64("t", t).field_f64("residual", residual);
            }
            Self::SolverDone {
                accepted,
                rejected,
                min_h,
                max_h,
                max_reject_streak,
                converged,
                residual,
            } => {
                j.field_u64("accepted", accepted)
                    .field_u64("rejected", rejected)
                    .field_f64("min_h", min_h)
                    .field_f64("max_h", max_h)
                    .field_u64("max_reject_streak", max_reject_streak)
                    .field_bool("converged", converged)
                    .field_f64("residual", residual);
            }
            Self::Sim {
                t,
                proc,
                src,
                count,
                ..
            } => {
                j.field_f64("t", t).field_u64("proc", proc as u64);
                if let Some(s) = src {
                    j.field_u64("src", s as u64);
                }
                if count != 1 {
                    j.field_u64("count", count as u64);
                }
            }
            Self::Job {
                t,
                job,
                proc,
                src,
                delay,
                ..
            } => {
                j.field_f64("t", t)
                    .field_u64("job", job)
                    .field_u64("proc", proc as u64);
                if let Some(s) = src {
                    j.field_u64("src", s as u64);
                }
                if delay != 0.0 {
                    j.field_f64("delay", delay);
                }
            }
            Self::TailSample { t, tails, depth } => {
                j.field_f64("t", t).key("s").begin_arr();
                for &s in tails.iter().take(depth as usize) {
                    j.f64_val(s);
                }
                j.end_arr();
            }
            Self::Heartbeat {
                t,
                events,
                tasks_in_system,
            } => {
                j.field_f64("t", t)
                    .field_u64("events", events)
                    .field_u64("tasks_in_system", tasks_in_system);
            }
            Self::ReplicateDone {
                seed,
                wall_ms,
                events,
                events_per_sec,
            } => {
                j.field_u64("seed", seed)
                    .field_f64("wall_ms", wall_ms)
                    .field_u64("events", events)
                    .field_f64("events_per_sec", events_per_sec);
            }
        }
        j.end_obj();
        j.finish()
    }
}

/// Schema identifier written in trace header lines.
pub const TRACE_SCHEMA: &str = "loadsteal.trace.v1";

/// The optional first line of an NDJSON trace: what system produced
/// the events that follow, so a trace is self-describing.
///
/// Events are `Copy` and headers carry a model string, so the header
/// is its own type rather than an [`Event`] variant; readers that
/// predate it (or `Lossy` mode on unknown fields) simply skip the
/// line. All fields are optional — a solver trace has a model but no
/// seed, a bare simulator trace may have neither.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceHeader {
    /// Canonical `ModelSpec` string of the simulated/solved system.
    pub model: Option<String>,
    /// Number of processors simulated.
    pub n: Option<u64>,
    /// Base RNG seed.
    pub seed: Option<u64>,
    /// Number of replications whose events follow.
    pub runs: Option<u64>,
    /// Per-kind sampling stride: only every `sample`-th event of each
    /// kind was written (`--trace-sample k`). Absent (or 1) means the
    /// trace is complete. Sampled traces are for rate/throughput
    /// analysis — exact replay (queue-depth reconstruction, job
    /// lifecycles) needs a complete trace.
    pub sample: Option<u64>,
}

impl TraceHeader {
    /// Render as a single-line JSON object (the NDJSON wire format):
    /// `{"ev":"header","schema":"loadsteal.trace.v1",...}` with absent
    /// fields elided.
    pub fn to_json_line(&self) -> String {
        let mut j = JsonBuf::new();
        j.begin_obj()
            .field_str("ev", "header")
            .field_str("schema", TRACE_SCHEMA);
        if let Some(model) = &self.model {
            j.field_str("model", model);
        }
        if let Some(n) = self.n {
            j.field_u64("n", n);
        }
        if let Some(seed) = self.seed {
            j.field_u64("seed", seed);
        }
        if let Some(runs) = self.runs {
            j.field_u64("runs", runs);
        }
        if let Some(sample) = self.sample.filter(|&k| k > 1) {
            j.field_u64("sample", sample);
        }
        j.end_obj();
        j.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_event_renders_one_json_object() {
        let events = [
            Event::SolverStep {
                accepted: true,
                t: 1.0,
                h: 0.5,
                err_norm: 0.3,
            },
            Event::SolverSteady {
                t: 2.0,
                residual: 1e-9,
            },
            Event::SolverDone {
                accepted: 10,
                rejected: 2,
                min_h: 1e-3,
                max_h: 4.0,
                max_reject_streak: 1,
                converged: true,
                residual: 5e-11,
            },
            Event::Sim {
                kind: SimEventKind::Migration,
                t: 3.0,
                proc: 7,
                src: Some(2),
                count: 3,
            },
            Event::Job {
                kind: JobEventKind::Migrate,
                t: 3.5,
                job: 17,
                proc: 4,
                src: Some(11),
                delay: 0.25,
            },
            Event::TailSample {
                t: 3.75,
                tails: [0.9, 0.4, 0.1, 0.0, 0.0, 0.0, 0.0, 0.0],
                depth: 3,
            },
            Event::Heartbeat {
                t: 4.0,
                events: 100,
                tasks_in_system: 12,
            },
            Event::ReplicateDone {
                seed: 42,
                wall_ms: 15.5,
                events: 1000,
                events_per_sec: 64516.0,
            },
        ];
        for ev in events {
            let line = ev.to_json_line();
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            assert!(!line.contains('\n'));
            assert!(
                line.contains(&format!("\"ev\":\"{}\"", ev.name())),
                "{line}"
            );
        }
    }

    #[test]
    fn unit_count_is_elided() {
        let line = Event::Sim {
            kind: SimEventKind::Arrival,
            t: 0.0,
            proc: 0,
            src: None,
            count: 1,
        }
        .to_json_line();
        assert!(!line.contains("count"), "{line}");
        assert!(!line.contains("src"), "{line}");
    }

    #[test]
    fn header_renders_with_elided_fields() {
        let full = TraceHeader {
            model: Some("lambda=0.9,policy=steal,T=2,d=1,k=1".into()),
            n: Some(128),
            seed: Some(42),
            runs: Some(3),
            sample: None,
        };
        let line = full.to_json_line();
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        assert!(line.contains(r#""ev":"header""#), "{line}");
        assert!(line.contains(r#""schema":"loadsteal.trace.v1""#), "{line}");
        assert!(line.contains(r#""model":"lambda=0.9"#), "{line}");
        assert!(line.contains(r#""n":128"#), "{line}");
        let sparse = TraceHeader {
            model: Some("lambda=0.8,policy=none".into()),
            ..TraceHeader::default()
        };
        let line = sparse.to_json_line();
        assert!(!line.contains("\"n\""), "{line}");
        assert!(!line.contains("seed"), "{line}");
    }

    #[test]
    fn header_sample_stride_renders_only_when_sampling() {
        let sampled = TraceHeader {
            sample: Some(16),
            ..TraceHeader::default()
        };
        assert!(sampled.to_json_line().contains(r#""sample":16"#));
        // A stride of 1 is a complete trace — elided like absence.
        let complete = TraceHeader {
            sample: Some(1),
            ..TraceHeader::default()
        };
        assert!(!complete.to_json_line().contains("sample"));
    }

    #[test]
    fn job_event_elides_src_and_zero_delay() {
        let line = Event::Job {
            kind: JobEventKind::Arrival,
            t: 1.0,
            job: 3,
            proc: 5,
            src: None,
            delay: 0.0,
        }
        .to_json_line();
        assert!(line.contains(r#""ev":"job_arrival""#), "{line}");
        assert!(line.contains(r#""job":3"#), "{line}");
        assert!(line.contains(r#""proc":5"#), "{line}");
        assert!(!line.contains("src"), "{line}");
        assert!(!line.contains("delay"), "{line}");
    }

    #[test]
    fn job_migrate_carries_victim_and_delay() {
        let line = Event::Job {
            kind: JobEventKind::Migrate,
            t: 2.0,
            job: 9,
            proc: 1,
            src: Some(6),
            delay: 0.5,
        }
        .to_json_line();
        assert!(line.contains(r#""ev":"job_migrate""#), "{line}");
        assert!(line.contains(r#""src":6"#), "{line}");
        assert!(line.contains(r#""delay":0.5"#), "{line}");
        // An instantaneous hop elides the delay field (reader defaults
        // it to 0).
        let instant = Event::Job {
            kind: JobEventKind::Migrate,
            t: 2.0,
            job: 9,
            proc: 1,
            src: Some(6),
            delay: 0.0,
        }
        .to_json_line();
        assert!(!instant.contains("delay"), "{instant}");
    }

    #[test]
    fn tail_sample_writes_only_depth_entries() {
        let line = Event::TailSample {
            t: 12.5,
            tails: [0.875, 0.5, 0.125, 0.0, 0.0, 0.0, 0.0, 0.0],
            depth: 3,
        }
        .to_json_line();
        assert!(line.contains(r#""ev":"tail_sample""#), "{line}");
        assert!(line.contains(r#""t":12.5"#), "{line}");
        assert!(line.contains(r#""s":[0.875,0.5,0.125]"#), "{line}");
        // Non-finite entries render as null, like every other f64.
        let nan = Event::TailSample {
            t: 0.0,
            tails: [f64::NAN, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
            depth: 1,
        }
        .to_json_line();
        assert!(nan.contains(r#""s":[null]"#), "{nan}");
    }

    #[test]
    fn migration_source_is_emitted() {
        let line = Event::Sim {
            kind: SimEventKind::Migration,
            t: 1.0,
            proc: 3,
            src: Some(9),
            count: 2,
        }
        .to_json_line();
        assert!(line.contains(r#""src":9"#), "{line}");
        assert!(line.contains(r#""count":2"#), "{line}");
    }
}
