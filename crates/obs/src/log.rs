//! A tiny leveled diagnostic logger filtered by the `LOADSTEAL_LOG`
//! environment variable (`off`, `info`, or `debug`; default `info`).
//!
//! This is for human-facing progress/diagnostic lines on stderr; the
//! structured data path is [`crate::Recorder`]. A process-wide quiet
//! override (the CLI's `--quiet`) silences everything regardless of the
//! environment.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Log verbosity levels, ordered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Nothing.
    Off = 0,
    /// Progress and summaries.
    Info = 1,
    /// Detailed diagnostics.
    Debug = 2,
}

impl Level {
    /// Parse a level name (case-insensitive). Unknown names map to
    /// `Info` so a typo degrades gracefully instead of silencing.
    pub fn parse(s: &str) -> Level {
        match s.trim().to_ascii_lowercase().as_str() {
            "off" | "none" | "0" => Level::Off,
            "debug" | "trace" | "2" => Level::Debug,
            _ => Level::Info,
        }
    }
}

fn env_level() -> Level {
    static LEVEL: OnceLock<Level> = OnceLock::new();
    *LEVEL.get_or_init(|| match std::env::var("LOADSTEAL_LOG") {
        Ok(v) => Level::parse(&v),
        Err(_) => Level::Info,
    })
}

/// 0 = follow the environment, 1 = forced off (`--quiet`).
static QUIET: AtomicU8 = AtomicU8::new(0);

/// Force all logging off (or back on) process-wide; used by `--quiet`.
pub fn set_quiet(quiet: bool) {
    QUIET.store(quiet as u8, Ordering::Relaxed);
}

/// Whether a message at `level` should currently be printed.
pub fn level_enabled(level: Level) -> bool {
    if QUIET.load(Ordering::Relaxed) != 0 {
        return false;
    }
    level <= env_level()
}

/// Print a formatted message to stderr if `level` is enabled.
/// Prefer the [`info!`](crate::info) / [`debug!`](crate::debug) macros.
pub fn log_at(level: Level, args: std::fmt::Arguments<'_>) {
    if level_enabled(level) {
        let tag = match level {
            Level::Off => return,
            Level::Info => "info",
            Level::Debug => "debug",
        };
        eprintln!("[loadsteal {tag}] {args}");
    }
}

/// Log at info level (stderr, filtered by `LOADSTEAL_LOG` / `--quiet`).
#[macro_export]
macro_rules! info {
    ($($arg:tt)*) => {
        $crate::log::log_at($crate::log::Level::Info, format_args!($($arg)*))
    };
}

/// Log at debug level (stderr, filtered by `LOADSTEAL_LOG` / `--quiet`).
#[macro_export]
macro_rules! debug {
    ($($arg:tt)*) => {
        $crate::log::log_at($crate::log::Level::Debug, format_args!($($arg)*))
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_parsing() {
        assert_eq!(Level::parse("off"), Level::Off);
        assert_eq!(Level::parse("OFF"), Level::Off);
        assert_eq!(Level::parse("0"), Level::Off);
        assert_eq!(Level::parse("info"), Level::Info);
        assert_eq!(Level::parse("debug"), Level::Debug);
        assert_eq!(Level::parse("bogus"), Level::Info);
    }

    #[test]
    fn quiet_overrides_everything() {
        set_quiet(true);
        assert!(!level_enabled(Level::Info));
        assert!(!level_enabled(Level::Debug));
        set_quiet(false);
        // Default env (unset) is Info in the test environment unless
        // the caller exported LOADSTEAL_LOG; either way Off events are
        // never printed and Debug implies Info.
        if level_enabled(Level::Debug) {
            assert!(level_enabled(Level::Info));
        }
    }

    #[test]
    fn levels_are_ordered() {
        assert!(Level::Off < Level::Info);
        assert!(Level::Info < Level::Debug);
    }
}
