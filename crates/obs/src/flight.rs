//! Crash-safe flight recorder: a fixed-capacity in-memory ring of the
//! most recent [`Event`]s that a chained panic hook dumps to
//! `loadsteal-crash-<pid>.ndjson` — in the working directory by
//! default, or under the directory named by [`set_dump_dir`] /
//! `LOADSTEAL_FLIGHT_DIR` — so a failed long run leaves its final
//! seconds behind for post-mortem analysis.
//!
//! The recorder is process-global and off by default. [`install`]
//! sizes the ring, arms recording, and (once per process) chains a
//! panic hook in front of the existing one. [`record`] is a cheap
//! no-op while disarmed — one relaxed atomic load — so it can sit on
//! the same recorder tee as tracing without budget impact.
//!
//! The dump is an ordinary `loadsteal.trace.v1` NDJSON stream: the run
//! header (when one was observed), the buffered events in arrival
//! order, and a final `{"ev":"panic",…}` line carrying the panic
//! message and ring statistics. The trace reader parses it strictly.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use crate::event::Event;
use crate::json::JsonBuf;

/// Default ring capacity (events) used by the CLI's
/// `--flight-recorder` switch.
pub const DEFAULT_CAPACITY: usize = 4096;

static ACTIVE: AtomicBool = AtomicBool::new(false);
static HOOKED: AtomicBool = AtomicBool::new(false);
static DUMPED: AtomicBool = AtomicBool::new(false);

struct Buf {
    cap: usize,
    ring: VecDeque<Event>,
    dropped: u64,
    header: Option<String>,
    dump_dir: Option<String>,
}

static BUF: Mutex<Buf> = Mutex::new(Buf {
    cap: 0,
    ring: VecDeque::new(),
    dropped: 0,
    header: None,
    dump_dir: None,
});

fn lock() -> std::sync::MutexGuard<'static, Buf> {
    BUF.lock().unwrap_or_else(|p| p.into_inner())
}

/// Whether the flight recorder is armed. One relaxed load.
#[inline]
pub fn active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// Arm the flight recorder with the given ring capacity (events) and
/// chain the crash-dump panic hook in front of the current one. Safe
/// to call more than once: later calls resize the ring and re-arm but
/// never stack a second hook.
pub fn install(capacity: usize) {
    {
        let mut b = lock();
        b.cap = capacity.max(1);
        while b.ring.len() > b.cap {
            b.ring.pop_front();
            b.dropped += 1;
        }
    }
    if !HOOKED.swap(true, Ordering::SeqCst) {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            dump_on_panic(info);
            prev(info);
        }));
    }
    ACTIVE.store(true, Ordering::Relaxed);
}

/// Disarm recording (the hook stays installed but becomes a no-op).
pub fn disarm() {
    ACTIVE.store(false, Ordering::Relaxed);
}

/// Append one event to the ring, evicting the oldest when full. No-op
/// while disarmed.
pub fn record(ev: &Event) {
    if !active() {
        return;
    }
    let mut b = lock();
    if b.cap == 0 {
        return;
    }
    if b.ring.len() == b.cap {
        b.ring.pop_front();
        b.dropped += 1;
    }
    b.ring.push_back(*ev);
}

/// Remember the run's trace-header line so crash dumps are
/// self-describing. No-op while disarmed.
pub fn set_header(line: String) {
    if !active() {
        return;
    }
    lock().header = Some(line);
}

/// Current `(buffered, dropped)` counts (test/diagnostic aid).
pub fn stats() -> (u64, u64) {
    let b = lock();
    (b.ring.len() as u64, b.dropped)
}

/// Clear the ring, drop the stored header, and reset the
/// once-per-process dump latch (test aid; the hook stays installed).
pub fn reset() {
    let mut b = lock();
    b.ring.clear();
    b.dropped = 0;
    b.header = None;
    DUMPED.store(false, Ordering::SeqCst);
}

/// Render the dump NDJSON for the current ring contents: optional
/// header line, buffered events, and a closing panic record carrying
/// `message`. This is exactly what the panic hook writes to disk.
pub fn render_dump(message: &str, thread: Option<&str>) -> String {
    let b = lock();
    let mut out = String::new();
    if let Some(h) = &b.header {
        out.push_str(h);
        out.push('\n');
    }
    for ev in &b.ring {
        out.push_str(&ev.to_json_line());
        out.push('\n');
    }
    let rec = PanicRecord {
        message: message.to_owned(),
        thread: thread.map(str::to_owned),
        buffered: b.ring.len() as u64,
        dropped: b.dropped,
    };
    out.push_str(&rec.to_json_line());
    out.push('\n');
    out
}

/// Direct crash dumps into `dir` instead of the working directory
/// (`None` restores the default). An explicit directory set here wins
/// over the `LOADSTEAL_FLIGHT_DIR` environment variable. The directory
/// is used as given — it is not created.
pub fn set_dump_dir(dir: Option<String>) {
    lock().dump_dir = dir;
}

/// The crash-dump path for this process: the fixed filename
/// `loadsteal-crash-<pid>.ndjson` joined under the configured dump
/// directory — [`set_dump_dir`] first, then `LOADSTEAL_FLIGHT_DIR`,
/// then the working directory.
pub fn dump_path() -> String {
    let file = format!("loadsteal-crash-{}.ndjson", std::process::id());
    let dir = lock()
        .dump_dir
        .clone()
        .or_else(|| std::env::var("LOADSTEAL_FLIGHT_DIR").ok())
        .filter(|d| !d.is_empty());
    match dir {
        Some(d) => std::path::Path::new(&d)
            .join(file)
            .to_string_lossy()
            .into_owned(),
        None => file,
    }
}

fn dump_on_panic(info: &std::panic::PanicHookInfo<'_>) {
    if !active() {
        return;
    }
    // Only the first panicking thread writes; concurrent worker panics
    // would otherwise race on the same file.
    if DUMPED.swap(true, Ordering::SeqCst) {
        return;
    }
    let message = if let Some(s) = info.payload().downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = info.payload().downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    };
    let message = match info.location() {
        Some(loc) => format!("{message} ({}:{})", loc.file(), loc.line()),
        None => message,
    };
    let thread = std::thread::current().name().map(str::to_owned);
    let doc = render_dump(&message, thread.as_deref());
    let path = dump_path();
    match std::fs::write(&path, doc) {
        Ok(()) => eprintln!("flight recorder: wrote crash dump to {path}"),
        Err(e) => eprintln!("flight recorder: could not write {path}: {e}"),
    }
}

/// One `{"ev":"panic",…}` NDJSON line: the terminal record of a crash
/// dump, carrying the panic message and the ring statistics at the
/// moment of the crash.
#[derive(Debug, Clone, PartialEq)]
pub struct PanicRecord {
    /// The panic message (with `file:line` when known).
    pub message: String,
    /// Name of the panicking thread, when it had one.
    pub thread: Option<String>,
    /// Events present in the ring when the dump was taken.
    pub buffered: u64,
    /// Events evicted from the ring before the dump.
    pub dropped: u64,
}

impl PanicRecord {
    /// Serialize as one NDJSON object (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut j = JsonBuf::new();
        j.begin_obj()
            .field_str("ev", "panic")
            .field_str("message", &self.message);
        if let Some(t) = &self.thread {
            j.field_str("thread", t);
        }
        j.field_u64("buffered", self.buffered)
            .field_u64("dropped", self.dropped);
        j.end_obj();
        j.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    /// The ring is process-global; tests serialize on this.
    fn test_lock() -> std::sync::MutexGuard<'static, ()> {
        static TEST_LOCK: Mutex<()> = Mutex::new(());
        TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn ev(t: f64) -> Event {
        Event::Heartbeat {
            t,
            events: 1,
            tasks_in_system: 0,
        }
    }

    #[test]
    fn ring_keeps_the_most_recent_events() {
        let _l = test_lock();
        install(3);
        reset();
        for i in 0..5 {
            record(&ev(f64::from(i)));
        }
        let (buffered, dropped) = stats();
        assert_eq!((buffered, dropped), (3, 2));
        let dump = render_dump("boom", Some("main"));
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(lines.len(), 4, "3 events + panic line");
        let first = json::parse(lines[0]).unwrap();
        assert_eq!(first.get("t").and_then(|v| v.as_f64()), Some(2.0));
        disarm();
    }

    #[test]
    fn dump_ends_with_a_parseable_panic_record() {
        let _l = test_lock();
        install(8);
        reset();
        record(&ev(1.0));
        let dump = render_dump("assertion failed (x.rs:7)", None);
        let last = dump.lines().last().unwrap();
        let v = json::parse(last).unwrap();
        assert_eq!(v.get("ev").and_then(|v| v.as_str()), Some("panic"));
        assert_eq!(
            v.get("message").and_then(|v| v.as_str()),
            Some("assertion failed (x.rs:7)")
        );
        assert_eq!(v.get("buffered").and_then(|v| v.as_u64()), Some(1));
        disarm();
    }

    #[test]
    fn dump_path_honors_configured_directory() {
        let _l = test_lock();
        set_dump_dir(None);
        let default = dump_path();
        assert!(default.starts_with("loadsteal-crash-"), "{default}");
        assert!(default.ends_with(".ndjson"), "{default}");
        set_dump_dir(Some("/tmp/flight".into()));
        let configured = dump_path();
        assert!(configured.starts_with("/tmp/flight/"), "{configured}");
        assert!(configured.ends_with(&default), "{configured}");
        set_dump_dir(None);
    }

    #[test]
    fn disarmed_recording_is_a_no_op() {
        let _l = test_lock();
        install(4);
        reset();
        disarm();
        record(&ev(0.0));
        assert_eq!(stats(), (0, 0));
    }

    #[test]
    fn header_line_leads_the_dump() {
        let _l = test_lock();
        install(4);
        reset();
        set_header(crate::event::TraceHeader::default().to_json_line());
        record(&ev(0.5));
        let dump = render_dump("boom", None);
        let first = dump.lines().next().unwrap();
        let v = json::parse(first).unwrap();
        assert_eq!(v.get("ev").and_then(|v| v.as_str()), Some("header"));
        disarm();
    }
}
