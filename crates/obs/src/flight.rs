//! Crash-safe flight recorder: fixed-capacity in-memory rings of the
//! most recent [`Event`]s that a chained panic hook dumps to
//! `loadsteal-crash-<pid>.ndjson` — in the working directory by
//! default, or under the directory named by [`set_dump_dir`] /
//! `LOADSTEAL_FLIGHT_DIR` — so a failed long run leaves its final
//! seconds behind for post-mortem analysis.
//!
//! The recorder is process-global and off by default. [`install`]
//! sizes the rings, arms recording, and (once per process) chains a
//! panic hook in front of the existing one. [`record`] is a cheap
//! no-op while disarmed — one relaxed atomic load — so it can sit on
//! the same recorder tee as tracing without budget impact.
//!
//! Armed recording is **per-thread**: each recording thread keeps its
//! own ring (capacity [`install`]'s argument *per thread*) behind a
//! mutex only that thread ever locks on the hot path, so the executor
//! pool's workers never contend on a shared ring or bounce a shared
//! cache line per event. The rings live in a global registry the
//! panic hook walks at dump time, merging them into one time-ordered
//! stream — the same `(t, ring, seq)` merge key the sharded trace
//! recorder uses, so timeless events stay behind the last timestamped
//! event of their thread and per-thread order is always preserved. A
//! worker that died before the crash still contributes its final
//! events: registry entries outlive their threads.
//!
//! The dump is an ordinary `loadsteal.trace.v1` NDJSON stream: the run
//! header (when one was observed), the merged buffered events, and a
//! final `{"ev":"panic",…}` line carrying the panic message and ring
//! statistics. The trace reader parses it strictly.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use crate::event::Event;
use crate::json::JsonBuf;
use crate::shard::event_time;

/// Default per-thread ring capacity (events) used by the CLI's
/// `--flight-recorder` switch.
pub const DEFAULT_CAPACITY: usize = 4096;

static ACTIVE: AtomicBool = AtomicBool::new(false);
static HOOKED: AtomicBool = AtomicBool::new(false);
static DUMPED: AtomicBool = AtomicBool::new(false);

/// Per-thread ring capacity, read when a thread creates its ring and
/// pushed eagerly into existing rings by [`install`].
static CAP: AtomicUsize = AtomicUsize::new(0);

/// One thread's ring. The owning thread locks it on every record —
/// uncontended except while a dump or an [`install`]/[`reset`] walk
/// is in progress.
struct Ring {
    cap: usize,
    /// `(per-thread sequence, event)` in emission order.
    buf: VecDeque<(u64, Event)>,
    next_seq: u64,
    dropped: u64,
}

impl Ring {
    fn push(&mut self, ev: &Event) {
        if self.cap == 0 {
            return;
        }
        if self.buf.len() == self.cap {
            self.buf.pop_front();
            self.dropped += 1;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.buf.push_back((seq, *ev));
    }

    fn clear(&mut self) {
        self.buf.clear();
        self.next_seq = 0;
        self.dropped = 0;
    }
}

/// Every thread's ring, in registration order. Entries are never
/// removed: a dead worker's last events must survive into the dump.
static REGISTRY: Mutex<Vec<Arc<Mutex<Ring>>>> = Mutex::new(Vec::new());

/// Run header and dump-directory override (touched at run start and
/// dump time only — never on the per-event path).
struct Meta {
    header: Option<String>,
    dump_dir: Option<String>,
}

static META: Mutex<Meta> = Mutex::new(Meta {
    header: None,
    dump_dir: None,
});

fn meta() -> std::sync::MutexGuard<'static, Meta> {
    META.lock().unwrap_or_else(|p| p.into_inner())
}

fn registry() -> std::sync::MutexGuard<'static, Vec<Arc<Mutex<Ring>>>> {
    REGISTRY.lock().unwrap_or_else(|p| p.into_inner())
}

fn lock_ring(r: &Mutex<Ring>) -> std::sync::MutexGuard<'_, Ring> {
    r.lock().unwrap_or_else(|p| p.into_inner())
}

thread_local! {
    /// This thread's handle into the registry, created on first record.
    static LOCAL: RefCell<Option<Arc<Mutex<Ring>>>> = const { RefCell::new(None) };
}

/// Create this thread's ring and register it globally.
fn register_ring() -> Arc<Mutex<Ring>> {
    let ring = Arc::new(Mutex::new(Ring {
        cap: CAP.load(Ordering::Relaxed),
        buf: VecDeque::new(),
        next_seq: 0,
        dropped: 0,
    }));
    registry().push(Arc::clone(&ring));
    ring
}

/// Whether the flight recorder is armed. One relaxed load.
#[inline]
pub fn active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// Arm the flight recorder with the given per-thread ring capacity
/// (events) and chain the crash-dump panic hook in front of the
/// current one. Safe to call more than once: later calls resize every
/// live ring (trimming oldest-first) and re-arm but never stack a
/// second hook.
pub fn install(capacity: usize) {
    let cap = capacity.max(1);
    CAP.store(cap, Ordering::Relaxed);
    for ring in registry().iter() {
        let mut r = lock_ring(ring);
        r.cap = cap;
        while r.buf.len() > cap {
            r.buf.pop_front();
            r.dropped += 1;
        }
    }
    if !HOOKED.swap(true, Ordering::SeqCst) {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            dump_on_panic(info);
            prev(info);
        }));
    }
    ACTIVE.store(true, Ordering::Relaxed);
}

/// Disarm recording (the hook stays installed but becomes a no-op).
pub fn disarm() {
    ACTIVE.store(false, Ordering::Relaxed);
}

/// Append one event to the calling thread's ring, evicting its oldest
/// when full. No-op while disarmed. Touches no shared state beyond
/// this thread's own (uncontended) ring lock.
pub fn record(ev: &Event) {
    if !active() {
        return;
    }
    let _ = LOCAL.try_with(|slot| {
        let mut slot = slot.borrow_mut();
        let ring = slot.get_or_insert_with(register_ring);
        lock_ring(ring).push(ev);
    });
}

/// Remember the run's trace-header line so crash dumps are
/// self-describing. No-op while disarmed.
pub fn set_header(line: String) {
    if !active() {
        return;
    }
    meta().header = Some(line);
}

/// Current `(buffered, dropped)` counts summed over every thread's
/// ring (test/diagnostic aid).
pub fn stats() -> (u64, u64) {
    let mut buffered = 0u64;
    let mut dropped = 0u64;
    for ring in registry().iter() {
        let r = lock_ring(ring);
        buffered += r.buf.len() as u64;
        dropped += r.dropped;
    }
    (buffered, dropped)
}

/// Clear every ring, drop the stored header, and reset the
/// once-per-process dump latch (test aid; the hook and the ring
/// registry stay in place).
pub fn reset() {
    for ring in registry().iter() {
        lock_ring(ring).clear();
    }
    meta().header = None;
    DUMPED.store(false, Ordering::SeqCst);
}

/// Snapshot every ring and merge into one time-ordered stream.
///
/// Merge key: `(t, ring, seq)` where `t` is the event's own time when
/// it carries one and otherwise the previous timestamped event's time
/// in the same ring (`-∞` before any) — identical to the sharded
/// trace recorder's contract, so per-ring emission order is always
/// preserved and ties break deterministically by registration order.
fn merged_events() -> Vec<Event> {
    let mut keyed: Vec<(f64, usize, u64, Event)> = Vec::new();
    for (ring_idx, ring) in registry().iter().enumerate() {
        let r = lock_ring(ring);
        let mut last = f64::NEG_INFINITY;
        for (seq, ev) in &r.buf {
            if let Some(t) = event_time(ev) {
                last = t;
            }
            keyed.push((last, ring_idx, *seq, *ev));
        }
    }
    keyed.sort_by(|a, b| {
        a.0.total_cmp(&b.0)
            .then_with(|| a.1.cmp(&b.1))
            .then_with(|| a.2.cmp(&b.2))
    });
    keyed.into_iter().map(|(_, _, _, ev)| ev).collect()
}

/// Render the dump NDJSON for the current ring contents: optional
/// header line, every thread's buffered events merged time-ordered,
/// and a closing panic record carrying `message`. This is exactly
/// what the panic hook writes to disk.
pub fn render_dump(message: &str, thread: Option<&str>) -> String {
    let events = merged_events();
    let (_, dropped) = stats();
    let mut out = String::new();
    if let Some(h) = &meta().header {
        out.push_str(h);
        out.push('\n');
    }
    for ev in &events {
        out.push_str(&ev.to_json_line());
        out.push('\n');
    }
    let rec = PanicRecord {
        message: message.to_owned(),
        thread: thread.map(str::to_owned),
        buffered: events.len() as u64,
        dropped,
    };
    out.push_str(&rec.to_json_line());
    out.push('\n');
    out
}

/// Direct crash dumps into `dir` instead of the working directory
/// (`None` restores the default). An explicit directory set here wins
/// over the `LOADSTEAL_FLIGHT_DIR` environment variable. The directory
/// is used as given — it is not created.
pub fn set_dump_dir(dir: Option<String>) {
    meta().dump_dir = dir;
}

/// The crash-dump path for this process: the fixed filename
/// `loadsteal-crash-<pid>.ndjson` joined under the configured dump
/// directory — [`set_dump_dir`] first, then `LOADSTEAL_FLIGHT_DIR`,
/// then the working directory.
pub fn dump_path() -> String {
    let file = format!("loadsteal-crash-{}.ndjson", std::process::id());
    let dir = meta()
        .dump_dir
        .clone()
        .or_else(|| std::env::var("LOADSTEAL_FLIGHT_DIR").ok())
        .filter(|d| !d.is_empty());
    match dir {
        Some(d) => std::path::Path::new(&d)
            .join(file)
            .to_string_lossy()
            .into_owned(),
        None => file,
    }
}

fn dump_on_panic(info: &std::panic::PanicHookInfo<'_>) {
    if !active() {
        return;
    }
    // Only the first panicking thread writes; concurrent worker panics
    // would otherwise race on the same file.
    if DUMPED.swap(true, Ordering::SeqCst) {
        return;
    }
    let message = if let Some(s) = info.payload().downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = info.payload().downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    };
    let message = match info.location() {
        Some(loc) => format!("{message} ({}:{})", loc.file(), loc.line()),
        None => message,
    };
    let thread = std::thread::current().name().map(str::to_owned);
    let doc = render_dump(&message, thread.as_deref());
    let path = dump_path();
    match std::fs::write(&path, doc) {
        Ok(()) => eprintln!("flight recorder: wrote crash dump to {path}"),
        Err(e) => eprintln!("flight recorder: could not write {path}: {e}"),
    }
}

/// One `{"ev":"panic",…}` NDJSON line: the terminal record of a crash
/// dump, carrying the panic message and the ring statistics at the
/// moment of the crash.
#[derive(Debug, Clone, PartialEq)]
pub struct PanicRecord {
    /// The panic message (with `file:line` when known).
    pub message: String,
    /// Name of the panicking thread, when it had one.
    pub thread: Option<String>,
    /// Events present in the rings when the dump was taken.
    pub buffered: u64,
    /// Events evicted from the rings before the dump.
    pub dropped: u64,
}

impl PanicRecord {
    /// Serialize as one NDJSON object (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut j = JsonBuf::new();
        j.begin_obj()
            .field_str("ev", "panic")
            .field_str("message", &self.message);
        if let Some(t) = &self.thread {
            j.field_str("thread", t);
        }
        j.field_u64("buffered", self.buffered)
            .field_u64("dropped", self.dropped);
        j.end_obj();
        j.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    /// The rings are process-global; tests serialize on this.
    fn test_lock() -> std::sync::MutexGuard<'static, ()> {
        static TEST_LOCK: Mutex<()> = Mutex::new(());
        TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn ev(t: f64) -> Event {
        Event::Heartbeat {
            t,
            events: 1,
            tasks_in_system: 0,
        }
    }

    #[test]
    fn ring_keeps_the_most_recent_events() {
        let _l = test_lock();
        install(3);
        reset();
        for i in 0..5 {
            record(&ev(f64::from(i)));
        }
        let (buffered, dropped) = stats();
        assert_eq!((buffered, dropped), (3, 2));
        let dump = render_dump("boom", Some("main"));
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(lines.len(), 4, "3 events + panic line");
        let first = json::parse(lines[0]).unwrap();
        assert_eq!(first.get("t").and_then(|v| v.as_f64()), Some(2.0));
        disarm();
    }

    #[test]
    fn dump_ends_with_a_parseable_panic_record() {
        let _l = test_lock();
        install(8);
        reset();
        record(&ev(1.0));
        let dump = render_dump("assertion failed (x.rs:7)", None);
        let last = dump.lines().last().unwrap();
        let v = json::parse(last).unwrap();
        assert_eq!(v.get("ev").and_then(|v| v.as_str()), Some("panic"));
        assert_eq!(
            v.get("message").and_then(|v| v.as_str()),
            Some("assertion failed (x.rs:7)")
        );
        assert_eq!(v.get("buffered").and_then(|v| v.as_u64()), Some(1));
        disarm();
    }

    #[test]
    fn dump_path_honors_configured_directory() {
        let _l = test_lock();
        set_dump_dir(None);
        let default = dump_path();
        assert!(default.starts_with("loadsteal-crash-"), "{default}");
        assert!(default.ends_with(".ndjson"), "{default}");
        set_dump_dir(Some("/tmp/flight".into()));
        let configured = dump_path();
        assert!(configured.starts_with("/tmp/flight/"), "{configured}");
        assert!(configured.ends_with(&default), "{configured}");
        set_dump_dir(None);
    }

    #[test]
    fn disarmed_recording_is_a_no_op() {
        let _l = test_lock();
        install(4);
        reset();
        disarm();
        record(&ev(0.0));
        assert_eq!(stats(), (0, 0));
    }

    #[test]
    fn header_line_leads_the_dump() {
        let _l = test_lock();
        install(4);
        reset();
        set_header(crate::event::TraceHeader::default().to_json_line());
        record(&ev(0.5));
        let dump = render_dump("boom", None);
        let first = dump.lines().next().unwrap();
        let v = json::parse(first).unwrap();
        assert_eq!(v.get("ev").and_then(|v| v.as_str()), Some("header"));
        disarm();
    }

    #[test]
    fn concurrent_threads_merge_time_ordered_into_one_dump() {
        let _l = test_lock();
        install(64);
        reset();
        std::thread::scope(|s| {
            for w in 0..4u32 {
                s.spawn(move || {
                    for i in 0..10 {
                        record(&Event::Sim {
                            kind: crate::event::SimEventKind::Completion,
                            t: f64::from(i),
                            proc: w,
                            src: None,
                            count: i + 1,
                        });
                    }
                });
            }
        });
        assert_eq!(stats(), (40, 0));
        let dump = render_dump("boom", Some("exec-worker-0"));
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(lines.len(), 41, "40 events + panic line");
        // Globally nondecreasing in t, and per-thread order preserved
        // (count is the per-thread sequence stamp).
        let mut last_t = f64::NEG_INFINITY;
        let mut next_count = std::collections::BTreeMap::new();
        for line in &lines[..40] {
            let v = json::parse(line).unwrap();
            let t = v.get("t").and_then(|v| v.as_f64()).unwrap();
            assert!(t >= last_t, "dump regressed in t");
            last_t = t;
            let proc = v.get("proc").and_then(|v| v.as_u64()).unwrap();
            // `count` is elided on the wire when it is 1.
            let count = v.get("count").and_then(|v| v.as_u64()).unwrap_or(1);
            let next = next_count.entry(proc).or_insert(1u64);
            assert_eq!(count, *next, "thread {proc} order broken");
            *next += 1;
        }
        let panic_rec = json::parse(lines[40]).unwrap();
        assert_eq!(panic_rec.get("buffered").and_then(|v| v.as_u64()), Some(40));
        disarm();
    }
}
