//! Prometheus text-format exposition of a [`MetricsReport`].
//!
//! Renders the standard exposition format (version 0.0.4): `# HELP` /
//! `# TYPE` headers, `_total`-suffixed counters, plain gauges,
//! cumulative `_bucket{le="…"}` histogram series with `_sum`/`_count`,
//! and sketch quantiles as summaries. Metric names are sanitized
//! (`.` and any other invalid character → `_`), values use Rust's
//! shortest-roundtrip float formatting with non-finite values spelled
//! `+Inf`/`-Inf`/`NaN` as the format requires.

use crate::registry::MetricsReport;
use std::fmt::Write as _;

/// Turn a registry metric name into a valid Prometheus metric name:
/// `[a-zA-Z_:][a-zA-Z0-9_:]*`, with every invalid byte mapped to `_`
/// and a `_` prefix when the name would start with a digit.
pub fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, ch) in name.chars().enumerate() {
        let ok =
            ch.is_ascii_alphabetic() || ch == '_' || ch == ':' || (i > 0 && ch.is_ascii_digit());
        if i == 0 && ch.is_ascii_digit() {
            out.push('_');
            out.push(ch);
        } else if ok {
            out.push(ch);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Format a sample value per the exposition format.
fn fmt_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_owned()
    } else if v == f64::INFINITY {
        "+Inf".to_owned()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_owned()
    } else {
        format!("{v}")
    }
}

/// Render a snapshot as Prometheus text format.
///
/// `prefix` is prepended (with a `_` separator) to every metric name;
/// pass `""` for none. Every emitted line is newline-terminated, as
/// required by scrapers (an empty report renders as the empty string).
pub fn prometheus_text(report: &MetricsReport, prefix: &str) -> String {
    let mut out = String::new();
    let pre = if prefix.is_empty() {
        String::new()
    } else {
        format!("{}_", sanitize_name(prefix))
    };

    for (name, value) in &report.counters {
        let m = format!("{pre}{}_total", sanitize_name(name));
        let _ = writeln!(
            out,
            "# HELP {m} Counter {name:?} from the loadsteal registry."
        );
        let _ = writeln!(out, "# TYPE {m} counter");
        let _ = writeln!(out, "{m} {value}");
    }

    for (name, value) in &report.gauges {
        let m = format!("{pre}{}", sanitize_name(name));
        let _ = writeln!(
            out,
            "# HELP {m} Gauge {name:?} from the loadsteal registry."
        );
        let _ = writeln!(out, "# TYPE {m} gauge");
        let _ = writeln!(out, "{m} {}", fmt_value(*value));
    }

    for (name, h) in &report.histograms {
        let m = format!("{pre}{}", sanitize_name(name));
        let _ = writeln!(out, "# HELP {m} Histogram {name:?} (log2 buckets).");
        let _ = writeln!(out, "# TYPE {m} histogram");
        let mut cumulative = 0u64;
        for (i, &c) in h.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            cumulative += c;
            // Upper bound of log2 bucket i: 1 for bucket 0 (zeros),
            // else 2^i; the final bucket is open-ended.
            let le = if i >= 64 {
                f64::INFINITY
            } else {
                (1u128 << i) as f64
            };
            let _ = writeln!(out, "{m}_bucket{{le=\"{}\"}} {cumulative}", fmt_value(le));
        }
        let _ = writeln!(out, "{m}_bucket{{le=\"+Inf\"}} {}", h.count());
        let _ = writeln!(out, "{m}_sum {}", h.sum);
        let _ = writeln!(out, "{m}_count {}", h.count());
    }

    for (name, d) in &report.sketches {
        let m = format!("{pre}{}", sanitize_name(name));
        let _ = writeln!(
            out,
            "# HELP {m} Quantile sketch {name:?} (mergeable digest)."
        );
        let _ = writeln!(out, "# TYPE {m} summary");
        for q in [0.5, 0.9, 0.95, 0.99] {
            if let Some(v) = d.quantile(q) {
                let _ = writeln!(out, "{m}{{quantile=\"{q}\"}} {}", fmt_value(v));
            }
        }
        let _ = writeln!(out, "{m}_sum {}", fmt_value(d.sum()));
        let _ = writeln!(out, "{m}_count {}", d.count());
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    /// A line-level validity check mirroring what a scraper enforces:
    /// comments start with `# `, samples are `name{labels} value`.
    fn assert_valid_exposition(text: &str) {
        assert!(text.ends_with('\n'), "must end with a newline");
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("# ") {
                assert!(
                    rest.starts_with("HELP ") || rest.starts_with("TYPE "),
                    "bad comment: {line}"
                );
                continue;
            }
            let (name_part, value) = line.rsplit_once(' ').expect("sample needs a value");
            let name_end = name_part.find('{').unwrap_or(name_part.len());
            let name = &name_part[..name_end];
            assert!(
                name.chars()
                    .enumerate()
                    .all(|(i, c)| c.is_ascii_alphabetic()
                        || c == '_'
                        || c == ':'
                        || (i > 0 && c.is_ascii_digit())),
                "bad metric name in: {line}"
            );
            assert!(
                value.parse::<f64>().is_ok() || ["+Inf", "-Inf", "NaN"].contains(&value),
                "bad value in: {line}"
            );
        }
    }

    #[test]
    fn sanitizes_names() {
        assert_eq!(sanitize_name("sim.arrivals"), "sim_arrivals");
        assert_eq!(sanitize_name("a-b c"), "a_b_c");
        assert_eq!(sanitize_name("9lives"), "_9lives");
        assert_eq!(sanitize_name(""), "_");
    }

    #[test]
    fn full_report_renders_validly() {
        let reg = Registry::new();
        reg.counter("sim.arrivals").add(42);
        reg.gauge("sim.rate").set(0.75);
        let h = reg.histogram("sim.batch");
        for v in [0, 1, 3, 1000] {
            h.record(v);
        }
        let s = reg.sketch("sim.sojourn");
        for i in 1..=100 {
            s.record(i as f64 / 10.0);
        }
        let text = prometheus_text(&reg.snapshot(), "loadsteal");
        assert_valid_exposition(&text);
        assert!(text.contains("loadsteal_sim_arrivals_total 42"), "{text}");
        assert!(text.contains("# TYPE loadsteal_sim_rate gauge"), "{text}");
        assert!(text.contains("loadsteal_sim_rate 0.75"), "{text}");
        assert!(
            text.contains("loadsteal_sim_batch_bucket{le=\"+Inf\"} 4"),
            "{text}"
        );
        assert!(text.contains("loadsteal_sim_batch_count 4"), "{text}");
        assert!(text.contains("loadsteal_sim_batch_sum 1004"), "{text}");
        assert!(
            text.contains("loadsteal_sim_sojourn{quantile=\"0.99\"}"),
            "{text}"
        );
        assert!(text.contains("loadsteal_sim_sojourn_count 100"), "{text}");
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let reg = Registry::new();
        let h = reg.histogram("h");
        h.record(1); // bucket 1, le=2
        h.record(2); // bucket 2, le=4
        h.record(3); // bucket 2, le=4
        let text = prometheus_text(&reg.snapshot(), "");
        assert!(text.contains("h_bucket{le=\"2\"} 1"), "{text}");
        assert!(text.contains("h_bucket{le=\"4\"} 3"), "{text}");
        assert!(text.contains("h_bucket{le=\"+Inf\"} 3"), "{text}");
    }

    #[test]
    fn empty_report_is_empty_but_valid() {
        let text = prometheus_text(&MetricsReport::default(), "x");
        assert!(text.is_empty());
    }

    #[test]
    fn non_finite_gauges_render_prometheus_spellings() {
        let reg = Registry::new();
        reg.gauge("g").set(f64::INFINITY);
        let text = prometheus_text(&reg.snapshot(), "");
        assert!(text.contains("g +Inf"), "{text}");
        assert_valid_exposition(&text);
    }
}
