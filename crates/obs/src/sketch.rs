//! Streaming quantile sketches.
//!
//! Two complementary estimators for "what is the p99 sojourn time?"
//! without storing every sample:
//!
//! * [`P2Quantile`] — the classic P² (piecewise-parabolic) estimator of
//!   Jain & Chlamtac: five markers, O(1) memory, one quantile per
//!   instance. Best when a single target quantile is tracked online.
//! * [`Digest`] — a fixed-resolution log-linear histogram over
//!   non-negative floats: 32 linear sub-buckets per power-of-two octave
//!   (≤ ~3% relative error), any quantile after the fact, and —
//!   crucially — *mergeable*: two digests with the identical fixed
//!   layout combine by elementwise addition, so per-replication digests
//!   recorded on worker threads fold into one distribution.
//!
//! Both are deliberately simple; neither allocates after construction.

/// Sub-buckets per octave (top 5 mantissa bits → 32 linear slots).
const SUBS: usize = 32;
/// Smallest resolved exponent: values below `2^MIN_EXP` land in the
/// underflow bucket together with exact zeros.
const MIN_EXP: i32 = -32;
/// Largest resolved exponent: values at or above `2^MAX_EXP` clamp into
/// the overflow bucket.
const MAX_EXP: i32 = 32;
/// Bucket count: underflow + resolved octaves + overflow.
const BUCKETS: usize = (MAX_EXP - MIN_EXP) as usize * SUBS + 2;

/// A mergeable fixed-resolution quantile digest over `f64 >= 0`.
///
/// Negative and non-finite observations are counted in `rejected` and
/// otherwise ignored, so adversarial inputs cannot poison quantiles.
#[derive(Debug, Clone, PartialEq)]
pub struct Digest {
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    /// Observations refused (negative or non-finite).
    pub rejected: u64,
}

impl Default for Digest {
    fn default() -> Self {
        Self {
            counts: vec![0; BUCKETS],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            rejected: 0,
        }
    }
}

/// Bucket index for a valid (finite, non-negative) observation.
#[inline]
fn bucket_index(v: f64) -> usize {
    let bits = v.to_bits();
    let exp = ((bits >> 52) & 0x7ff) as i32 - 1023;
    if exp < MIN_EXP {
        return 0; // zero, subnormals, tiny values
    }
    if exp >= MAX_EXP {
        return BUCKETS - 1;
    }
    let sub = ((bits >> 47) & (SUBS as u64 - 1)) as usize;
    (exp - MIN_EXP) as usize * SUBS + sub + 1
}

/// Inclusive-lower / exclusive-upper value bounds of bucket `i`.
fn bucket_bounds(i: usize) -> (f64, f64) {
    if i == 0 {
        return (0.0, (MIN_EXP as f64).exp2());
    }
    if i == BUCKETS - 1 {
        return ((MAX_EXP as f64).exp2(), f64::MAX);
    }
    let slot = i - 1;
    let exp = MIN_EXP + (slot / SUBS) as i32;
    let sub = (slot % SUBS) as f64;
    let base = (exp as f64).exp2();
    let width = base / SUBS as f64;
    (base + sub * width, base + (sub + 1.0) * width)
}

impl Digest {
    /// Fresh empty digest.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one observation.
    #[inline]
    pub fn record(&mut self, v: f64) {
        if !(v.is_finite() && v >= 0.0) {
            self.rejected += 1;
            return;
        }
        self.counts[bucket_index(v)] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean observation, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest observation (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Fold another digest into this one. Always succeeds: every digest
    /// shares the same fixed layout.
    pub fn merge(&mut self, other: &Digest) {
        for (dst, src) in self.counts.iter_mut().zip(&other.counts) {
            *dst += src;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.rejected += other.rejected;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Estimate the `q`-quantile (`q` clamped to `[0, 1]`), or `None`
    /// when the digest is empty.
    ///
    /// Interpolates linearly inside the covering bucket and clamps to
    /// the exact observed min/max, so `quantile(0)` and `quantile(1)`
    /// are exact and interior quantiles carry the bucket's ≤ ~3%
    /// relative error.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // Target rank in [1, count] (nearest-rank with interpolation).
        let rank = q * (self.count - 1) as f64 + 1.0;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let lo_rank = seen as f64 + 1.0;
            seen += c;
            if rank <= seen as f64 {
                let (lo, hi) = bucket_bounds(i);
                let frac = if c == 1 {
                    0.5
                } else {
                    (rank - lo_rank) / (c - 1) as f64
                };
                let v = lo + frac * (hi - lo);
                return Some(v.clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }
}

/// State of the P² (piecewise-parabolic) single-quantile estimator.
///
/// Jain & Chlamtac, "The P² algorithm for dynamic calculation of
/// quantiles and histograms without storing observations", CACM 1985.
#[derive(Debug, Clone)]
pub struct P2Quantile {
    q: f64,
    /// Marker heights (estimates of the 0, q/2, q, (1+q)/2, 1 quantiles).
    heights: [f64; 5],
    /// Actual marker positions (1-based ranks).
    pos: [f64; 5],
    /// Desired marker positions.
    want: [f64; 5],
    /// Increment of each desired position per observation.
    dwant: [f64; 5],
    /// Observations seen (first five are buffered in `heights`).
    n: u64,
}

impl P2Quantile {
    /// Track the `q`-quantile, `0 < q < 1`.
    pub fn new(q: f64) -> Self {
        let q = q.clamp(1e-6, 1.0 - 1e-6);
        Self {
            q,
            heights: [0.0; 5],
            pos: [1.0, 2.0, 3.0, 4.0, 5.0],
            want: [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0],
            dwant: [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0],
            n: 0,
        }
    }

    /// The tracked quantile `q`.
    pub fn q(&self) -> f64 {
        self.q
    }

    /// Observations seen.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Record one observation. Non-finite values are ignored.
    pub fn record(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        if self.n < 5 {
            self.heights[self.n as usize] = x;
            self.n += 1;
            if self.n == 5 {
                self.heights.sort_by(f64::total_cmp);
            }
            return;
        }
        self.n += 1;
        // Find the cell k containing x and update extreme markers.
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x >= self.heights[4] {
            self.heights[4] = x;
            3
        } else {
            let mut k = 0;
            while k < 3 && x >= self.heights[k + 1] {
                k += 1;
            }
            k
        };
        for p in self.pos.iter_mut().skip(k + 1) {
            *p += 1.0;
        }
        for (w, d) in self.want.iter_mut().zip(&self.dwant) {
            *w += d;
        }
        // Adjust interior markers towards their desired positions.
        for i in 1..4 {
            let d = self.want[i] - self.pos[i];
            let step_up = self.pos[i + 1] - self.pos[i] > 1.0;
            let step_dn = self.pos[i - 1] - self.pos[i] < -1.0;
            if (d >= 1.0 && step_up) || (d <= -1.0 && step_dn) {
                let s = d.signum();
                let candidate = self.parabolic(i, s);
                self.heights[i] =
                    if self.heights[i - 1] < candidate && candidate < self.heights[i + 1] {
                        candidate
                    } else {
                        self.linear(i, s)
                    };
                self.pos[i] += s;
            }
        }
    }

    fn parabolic(&self, i: usize, s: f64) -> f64 {
        let (q0, q1, q2) = (self.heights[i - 1], self.heights[i], self.heights[i + 1]);
        let (n0, n1, n2) = (self.pos[i - 1], self.pos[i], self.pos[i + 1]);
        q1 + s / (n2 - n0)
            * ((n1 - n0 + s) * (q2 - q1) / (n2 - n1) + (n2 - n1 - s) * (q1 - q0) / (n1 - n0))
    }

    fn linear(&self, i: usize, s: f64) -> f64 {
        let j = (i as f64 + s) as usize;
        self.heights[i] + s * (self.heights[j] - self.heights[i]) / (self.pos[j] - self.pos[i])
    }

    /// Current estimate of the tracked quantile (`None` before any
    /// observation).
    pub fn value(&self) -> Option<f64> {
        match self.n {
            0 => None,
            n if n < 5 => {
                // Exact small-sample quantile from the buffer.
                let mut buf = self.heights[..n as usize].to_vec();
                buf.sort_by(f64::total_cmp);
                let rank = self.q * (n - 1) as f64;
                let lo = rank.floor() as usize;
                let hi = rank.ceil() as usize;
                Some(buf[lo] + (buf[hi] - buf[lo]) * (rank - lo as f64))
            }
            _ => Some(self.heights[2]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
        let rank = q * (sorted.len() - 1) as f64;
        let lo = rank.floor() as usize;
        let hi = rank.ceil() as usize;
        sorted[lo] + (sorted[hi] - sorted[lo]) * (rank - lo as f64)
    }

    /// Deterministic pseudo-uniform stream (SplitMix64).
    fn stream(seed: u64, len: usize) -> Vec<f64> {
        let mut s = seed;
        (0..len)
            .map(|_| {
                s = s.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = s;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^= z >> 31;
                (z >> 11) as f64 / (1u64 << 53) as f64
            })
            .collect()
    }

    #[test]
    fn digest_empty_and_single() {
        let mut d = Digest::new();
        assert_eq!(d.quantile(0.5), None);
        assert_eq!(d.count(), 0);
        d.record(3.25);
        assert_eq!(d.quantile(0.0), Some(3.25));
        assert_eq!(d.quantile(0.5), Some(3.25));
        assert_eq!(d.quantile(1.0), Some(3.25));
        assert_eq!(d.min(), Some(3.25));
        assert_eq!(d.max(), Some(3.25));
    }

    #[test]
    fn digest_quantiles_track_exact_within_resolution() {
        let mut xs: Vec<f64> = stream(7, 20_000).iter().map(|u| -u.ln() * 2.0).collect();
        let mut d = Digest::new();
        for &x in &xs {
            d.record(x);
        }
        xs.sort_by(f64::total_cmp);
        for q in [0.1, 0.5, 0.9, 0.95, 0.99] {
            let exact = exact_quantile(&xs, q);
            let est = d.quantile(q).unwrap();
            assert!(
                (est - exact).abs() / exact < 0.05,
                "q={q}: est {est} vs exact {exact}"
            );
        }
        assert!((d.mean() - 2.0).abs() < 0.1, "mean {}", d.mean());
    }

    #[test]
    fn digest_handles_zero_tiny_and_huge() {
        let mut d = Digest::new();
        d.record(0.0);
        d.record(1e-300); // underflow bucket
        d.record(1e300); // overflow bucket
        assert_eq!(d.count(), 3);
        assert_eq!(d.quantile(0.0), Some(0.0));
        assert_eq!(d.quantile(1.0), Some(1e300));
    }

    #[test]
    fn digest_rejects_negative_and_non_finite() {
        let mut d = Digest::new();
        d.record(-1.0);
        d.record(f64::NAN);
        d.record(f64::INFINITY);
        assert_eq!(d.count(), 0);
        assert_eq!(d.rejected, 3);
        assert_eq!(d.quantile(0.5), None);
    }

    #[test]
    fn digest_merge_equals_single_pass() {
        let xs = stream(11, 5_000);
        let (a_half, b_half) = xs.split_at(2_500);
        let mut a = Digest::new();
        let mut b = Digest::new();
        let mut whole = Digest::new();
        for &x in a_half {
            a.record(x);
        }
        for &x in b_half {
            b.record(x);
        }
        for &x in &xs {
            whole.record(x);
        }
        a.merge(&b);
        // Bucket counts and extremes are exactly the single-pass digest;
        // the float sum may differ by addition order only.
        assert_eq!(a.counts, whole.counts);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
        assert!((a.sum() - whole.sum()).abs() < 1e-9 * whole.sum());
        for q in [0.1, 0.5, 0.9, 0.99] {
            assert_eq!(a.quantile(q), whole.quantile(q), "q={q}");
        }
    }

    #[test]
    fn bucket_bounds_cover_the_index_map() {
        for v in [1e-9, 0.37, 1.0, 1.5, 2.0, 1000.0, 123456.789, 4e9] {
            let i = bucket_index(v);
            let (lo, hi) = bucket_bounds(i);
            assert!(lo <= v && v < hi, "v={v} i={i} bounds=({lo},{hi})");
        }
    }

    #[test]
    fn p2_before_five_samples_is_exact() {
        let mut p = P2Quantile::new(0.5);
        assert_eq!(p.value(), None);
        p.record(10.0);
        assert_eq!(p.value(), Some(10.0));
        p.record(20.0);
        assert_eq!(p.value(), Some(15.0));
        p.record(30.0);
        assert_eq!(p.value(), Some(20.0));
    }

    #[test]
    fn p2_converges_on_uniform_and_exponential() {
        for (q, gen, exact) in [
            (0.5, false, 0.5),
            (0.95, false, 0.95),
            (0.5, true, std::f64::consts::LN_2),
            (0.99, true, -(0.01f64).ln()),
        ] {
            let mut p = P2Quantile::new(q);
            for u in stream(13, 50_000) {
                p.record(if gen { -(1.0 - u).ln() } else { u });
            }
            let est = p.value().unwrap();
            assert!(
                (est - exact).abs() / exact < 0.05,
                "q={q} exp={gen}: est {est} vs exact {exact}"
            );
        }
    }

    #[test]
    fn p2_ignores_non_finite() {
        let mut p = P2Quantile::new(0.5);
        for x in [1.0, f64::NAN, 2.0, f64::INFINITY, 3.0] {
            p.record(x);
        }
        assert_eq!(p.count(), 3);
        assert_eq!(p.value(), Some(2.0));
    }

    #[test]
    fn p2_and_digest_agree() {
        let xs: Vec<f64> = stream(29, 30_000).iter().map(|u| u * u * 10.0).collect();
        let mut p = P2Quantile::new(0.9);
        let mut d = Digest::new();
        for &x in &xs {
            p.record(x);
            d.record(x);
        }
        let (pv, dv) = (p.value().unwrap(), d.quantile(0.9).unwrap());
        assert!((pv - dv).abs() / dv < 0.05, "P² {pv} vs digest {dv}");
    }
}
