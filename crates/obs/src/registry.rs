//! A small metrics registry: named counters, gauges, and log2-bucketed
//! histograms with atomic updates and a JSON-serializable snapshot.

use crate::json::JsonBuf;
use crate::sketch::Digest;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of histogram buckets: bucket `i` (for `i >= 1`) holds values
/// `v` with `2^(i-1) <= v < 2^i`; bucket 0 holds `v == 0`; the last
/// bucket also absorbs everything beyond the range.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// One cache-line-aligned counter slot, so adjacent shards of a
/// [`ShardedCounter`] never share a line.
#[derive(Debug, Default)]
#[repr(align(128))]
struct PaddedCounter(AtomicU64);

/// A counter sharded across per-worker slots: each updater increments
/// its own cache line, and readers fold the slots on
/// [`ShardedCounter::get`] / registry snapshot. Use it where many
/// threads bump the same logical counter at high rate (the executor's
/// per-worker task and steal tallies); a plain [`Counter`] is fine
/// everywhere else.
#[derive(Debug)]
pub struct ShardedCounter {
    slots: Box<[PaddedCounter]>,
}

impl ShardedCounter {
    /// A counter with `shards` independent slots (at least one).
    pub fn new(shards: usize) -> Self {
        ShardedCounter {
            slots: (0..shards.max(1))
                .map(|_| PaddedCounter::default())
                .collect(),
        }
    }

    /// Number of slots.
    pub fn shards(&self) -> usize {
        self.slots.len()
    }

    /// Add one on `shard` (indices wrap modulo the slot count).
    pub fn inc(&self, shard: usize) {
        self.add(shard, 1);
    }

    /// Add `n` on `shard`.
    pub fn add(&self, shard: usize, n: u64) {
        self.slots[shard % self.slots.len()]
            .0
            .fetch_add(n, Ordering::Relaxed);
    }

    /// One slot's value (indices wrap).
    pub fn slot(&self, shard: usize) -> u64 {
        self.slots[shard % self.slots.len()]
            .0
            .load(Ordering::Relaxed)
    }

    /// Folded total across all slots.
    pub fn get(&self) -> u64 {
        self.slots.iter().map(|s| s.0.load(Ordering::Relaxed)).sum()
    }
}

/// A last-value-wins floating-point gauge (stored as `f64` bits).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Set the value.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// A histogram over `u64` observations with power-of-two buckets.
///
/// Recording is one atomic add; there is no locking and no allocation.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: [(); HISTOGRAM_BUCKETS].map(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }
    }
}

/// Bucket index for a value: 0 for 0, else `64 - leading_zeros(v)`.
pub fn bucket_index(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

impl Histogram {
    /// Record one observation.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Snapshot of the raw bucket counts.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        for (dst, src) in buckets.iter_mut().zip(&self.buckets) {
            *dst = src.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            sum: self.sum(),
        }
    }

    /// Estimate the `q`-quantile from the live buckets (see
    /// [`HistogramSnapshot::quantile`]).
    pub fn quantile(&self, q: f64) -> Option<f64> {
        self.snapshot().quantile(q)
    }
}

/// Inclusive-lower / exclusive-upper value bounds of log2 bucket `i`.
fn log2_bucket_bounds(i: usize) -> (f64, f64) {
    match i {
        0 => (0.0, 1.0),
        _ => ((1u128 << (i - 1)) as f64, (1u128 << i) as f64),
    }
}

/// A point-in-time copy of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket counts (see [`bucket_index`]).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Sum of observations.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Total observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Mean observation, or 0 when empty.
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum as f64 / n as f64
        }
    }

    /// Upper bound (exclusive) of the highest non-empty bucket — a
    /// cheap order-of-magnitude "max".
    pub fn max_bound(&self) -> u64 {
        match self.buckets.iter().rposition(|&c| c > 0) {
            None | Some(0) => 0,
            Some(i) if i >= 64 => u64::MAX,
            Some(i) => 1u64 << i,
        }
    }

    /// Estimate the `q`-quantile (`q` clamped to `[0, 1]`) by linear
    /// interpolation within the covering log2 bucket, or `None` when the
    /// histogram is empty.
    ///
    /// Bucket 0 (exact zeros) contributes 0; bucket `i >= 1` covers
    /// `[2^(i-1), 2^i)`, so the estimate carries up to a factor-of-two
    /// relative error — use a [`Digest`] sketch when tighter tails
    /// matter.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = q * (total - 1) as f64 + 1.0;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let lo_rank = seen as f64 + 1.0;
            seen += c;
            if rank <= seen as f64 {
                if i == 0 {
                    return Some(0.0);
                }
                let (lo, hi) = log2_bucket_bounds(i);
                let frac = if c == 1 {
                    0.5
                } else {
                    (rank - lo_rank) / (c - 1) as f64
                };
                return Some(lo + frac * (hi - lo));
            }
        }
        Some(log2_bucket_bounds(HISTOGRAM_BUCKETS - 1).1)
    }
}

/// A thread-safe handle around a mergeable quantile [`Digest`].
///
/// Recording takes a mutex (unlike [`Histogram`]), so sketches are
/// intended for per-run aggregation paths, not per-event hot loops.
#[derive(Debug, Default)]
pub struct Sketch(Mutex<Digest>);

impl Sketch {
    /// Record one observation.
    pub fn record(&self, v: f64) {
        self.0.lock().expect("sketch poisoned").record(v);
    }

    /// Fold a locally-built digest into this sketch (the cheap path for
    /// worker threads: record into a private [`Digest`], merge once).
    pub fn merge_from(&self, d: &Digest) {
        self.0.lock().expect("sketch poisoned").merge(d);
    }

    /// Point-in-time copy of the underlying digest.
    pub fn snapshot(&self) -> Digest {
        self.0.lock().expect("sketch poisoned").clone()
    }
}

/// A registry of named metrics. Handles are `Arc`s, so instrumented
/// code resolves a name once and updates lock-free afterwards.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    sharded: Mutex<BTreeMap<String, Arc<ShardedCounter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
    sketches: Mutex<BTreeMap<String, Arc<Sketch>>>,
}

impl Registry {
    /// Fresh empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or create the counter `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().expect("registry poisoned");
        if let Some(c) = map.get(name) {
            return Arc::clone(c);
        }
        let c = Arc::new(Counter::default());
        map.insert(name.to_owned(), Arc::clone(&c));
        c
    }

    /// Get or create the per-worker sharded counter `name` with
    /// `shards` slots. An existing counter wins (its slot count is
    /// kept), so resolve once per instrumented site. On snapshot the
    /// folded total appears among the plain counters under `name` —
    /// scrape and `--metrics-json` consumers never see the sharding.
    pub fn sharded_counter(&self, name: &str, shards: usize) -> Arc<ShardedCounter> {
        let mut map = self.sharded.lock().expect("registry poisoned");
        if let Some(c) = map.get(name) {
            return Arc::clone(c);
        }
        let c = Arc::new(ShardedCounter::new(shards));
        map.insert(name.to_owned(), Arc::clone(&c));
        c
    }

    /// Get or create the gauge `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock().expect("registry poisoned");
        if let Some(g) = map.get(name) {
            return Arc::clone(g);
        }
        let g = Arc::new(Gauge::default());
        map.insert(name.to_owned(), Arc::clone(&g));
        g
    }

    /// Get or create the histogram `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.histograms.lock().expect("registry poisoned");
        if let Some(h) = map.get(name) {
            return Arc::clone(h);
        }
        let h = Arc::new(Histogram::default());
        map.insert(name.to_owned(), Arc::clone(&h));
        h
    }

    /// Get or create the quantile sketch `name`.
    pub fn sketch(&self, name: &str) -> Arc<Sketch> {
        let mut map = self.sketches.lock().expect("registry poisoned");
        if let Some(s) = map.get(name) {
            return Arc::clone(s);
        }
        let s = Arc::new(Sketch::default());
        map.insert(name.to_owned(), Arc::clone(&s));
        s
    }

    /// Point-in-time snapshot of every metric. Sharded counters are
    /// folded here: each contributes its cross-slot total to the
    /// `counters` map under its own name (a plain counter with the
    /// same name would be shadowed — don't register both).
    pub fn snapshot(&self) -> MetricsReport {
        let mut counters: BTreeMap<String, u64> = self
            .counters
            .lock()
            .expect("registry poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        for (k, v) in self.sharded.lock().expect("registry poisoned").iter() {
            counters.insert(k.clone(), v.get());
        }
        let gauges = self
            .gauges
            .lock()
            .expect("registry poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let histograms = self
            .histograms
            .lock()
            .expect("registry poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect();
        let sketches = self
            .sketches
            .lock()
            .expect("registry poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect();
        MetricsReport {
            counters,
            gauges,
            histograms,
            sketches,
        }
    }
}

/// A snapshot of a [`Registry`], ready for serialization.
#[derive(Debug, Clone, Default)]
pub struct MetricsReport {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Quantile-sketch digests by name.
    pub sketches: BTreeMap<String, Digest>,
}

impl MetricsReport {
    /// Serialize onto an open JSON object scope (caller owns the
    /// surrounding object/ key).
    pub fn write_json(&self, j: &mut JsonBuf) {
        j.begin_obj();
        j.key("counters").begin_obj();
        for (k, v) in &self.counters {
            j.field_u64(k, *v);
        }
        j.end_obj();
        j.key("gauges").begin_obj();
        for (k, v) in &self.gauges {
            j.field_f64(k, *v);
        }
        j.end_obj();
        j.key("histograms").begin_obj();
        for (k, h) in &self.histograms {
            j.key(k).begin_obj();
            j.field_u64("count", h.count())
                .field_u64("sum", h.sum)
                .field_f64("mean", h.mean())
                .field_u64("max_bound", h.max_bound());
            if h.count() > 0 {
                j.field_f64("p50", h.quantile(0.5).unwrap_or(0.0))
                    .field_f64("p90", h.quantile(0.9).unwrap_or(0.0))
                    .field_f64("p99", h.quantile(0.99).unwrap_or(0.0));
            }
            // Sparse rendering: [bucket_index, count] pairs.
            j.key("buckets").begin_arr();
            for (i, &c) in h.buckets.iter().enumerate() {
                if c > 0 {
                    j.begin_arr().u64_val(i as u64).u64_val(c).end_arr();
                }
            }
            j.end_arr();
            j.end_obj();
        }
        j.end_obj();
        j.key("sketches").begin_obj();
        for (k, d) in &self.sketches {
            j.key(k).begin_obj();
            j.field_u64("count", d.count()).field_f64("mean", d.mean());
            if d.count() > 0 {
                j.field_f64("min", d.min().unwrap_or(0.0))
                    .field_f64("max", d.max().unwrap_or(0.0))
                    .field_f64("p50", d.quantile(0.5).unwrap_or(0.0))
                    .field_f64("p90", d.quantile(0.9).unwrap_or(0.0))
                    .field_f64("p95", d.quantile(0.95).unwrap_or(0.0))
                    .field_f64("p99", d.quantile(0.99).unwrap_or(0.0));
            }
            if d.rejected > 0 {
                j.field_u64("rejected", d.rejected);
            }
            j.end_obj();
        }
        j.end_obj();
        j.end_obj();
    }

    /// Serialize as a standalone JSON document.
    pub fn to_json(&self) -> String {
        let mut j = JsonBuf::new();
        self.write_json(&mut j);
        j.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
    }

    #[test]
    fn histogram_counts_sum_and_bounds() {
        let h = Histogram::default();
        for v in [0, 1, 2, 3, 4, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 6);
        assert_eq!(s.sum, 1010);
        assert_eq!(s.buckets[0], 1); // 0
        assert_eq!(s.buckets[1], 1); // 1
        assert_eq!(s.buckets[2], 2); // 2, 3
        assert_eq!(s.buckets[3], 1); // 4
        assert_eq!(s.buckets[10], 1); // 1000
        assert_eq!(s.max_bound(), 1024);
        assert!((s.mean() - 1010.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn registry_handles_are_shared_and_snapshot_is_consistent() {
        let reg = Registry::new();
        let c1 = reg.counter("sim.arrivals");
        let c2 = reg.counter("sim.arrivals");
        c1.inc();
        c2.add(2);
        reg.gauge("sim.rate").set(0.75);
        reg.histogram("sim.batch").record(7);

        let snap = reg.snapshot();
        assert_eq!(snap.counters["sim.arrivals"], 3);
        assert_eq!(snap.gauges["sim.rate"], 0.75);
        assert_eq!(snap.histograms["sim.batch"].count(), 1);
        assert_eq!(snap.histograms["sim.batch"].sum, 7);
    }

    #[test]
    fn sharded_counters_fold_on_snapshot() {
        let reg = Registry::new();
        let c = reg.sharded_counter("exec.tasks", 4);
        let c2 = reg.sharded_counter("exec.tasks", 99); // existing wins
        assert_eq!(c2.shards(), 4);
        c.inc(0);
        c.add(1, 10);
        c.add(3, 100);
        c.add(7, 1); // wraps to slot 3
        assert_eq!(c.slot(0), 1);
        assert_eq!(c.slot(3), 101);
        assert_eq!(c.get(), 112);
        let snap = reg.snapshot();
        assert_eq!(snap.counters["exec.tasks"], 112);
        // And the fold survives serialization like a plain counter.
        assert!(snap.to_json().contains(r#""exec.tasks":112"#));
    }

    #[test]
    fn report_json_shape() {
        let reg = Registry::new();
        reg.counter("a").add(5);
        reg.gauge("g").set(1.5);
        reg.histogram("h").record(3);
        let json = reg.snapshot().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains(r#""counters":{"a":5}"#), "{json}");
        assert!(json.contains(r#""gauges":{"g":1.5}"#), "{json}");
        assert!(json.contains(r#""buckets":[[2,1]]"#), "{json}");
    }

    #[test]
    fn empty_histogram_report() {
        let s = Histogram::default().snapshot();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.max_bound(), 0);
    }

    #[test]
    fn quantile_of_empty_histogram_is_none() {
        let h = Histogram::default();
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.snapshot().quantile(0.99), None);
    }

    #[test]
    fn quantile_of_single_value() {
        let h = Histogram::default();
        h.record(100); // bucket [64, 128)
        for q in [0.0, 0.5, 1.0] {
            let v = h.quantile(q).unwrap();
            assert!((64.0..128.0).contains(&v), "q={q} -> {v}");
        }
        // A lone zero is exact.
        let z = Histogram::default();
        z.record(0);
        assert_eq!(z.quantile(0.5), Some(0.0));
    }

    #[test]
    fn quantile_crosses_buckets_monotonically() {
        let h = Histogram::default();
        // 50 small values in [1,2), 40 in [16,32), 10 in [1024,2048).
        for _ in 0..50 {
            h.record(1);
        }
        for _ in 0..40 {
            h.record(20);
        }
        for _ in 0..10 {
            h.record(1500);
        }
        let s = h.snapshot();
        let p25 = s.quantile(0.25).unwrap();
        let p70 = s.quantile(0.70).unwrap();
        let p99 = s.quantile(0.99).unwrap();
        assert!((1.0..2.0).contains(&p25), "p25={p25}");
        assert!((16.0..32.0).contains(&p70), "p70={p70}");
        assert!((1024.0..2048.0).contains(&p99), "p99={p99}");
        assert!(p25 <= p70 && p70 <= p99);
        // Clamped inputs behave.
        assert_eq!(s.quantile(-1.0), s.quantile(0.0));
        assert_eq!(s.quantile(2.0), s.quantile(1.0));
    }

    #[test]
    fn registry_sketches_snapshot_and_merge() {
        let reg = Registry::new();
        let s1 = reg.sketch("sim.sojourn");
        let s2 = reg.sketch("sim.sojourn");
        s1.record(1.0);
        s2.record(3.0);
        let mut local = Digest::new();
        local.record(2.0);
        s1.merge_from(&local);
        let snap = reg.snapshot();
        let d = &snap.sketches["sim.sojourn"];
        assert_eq!(d.count(), 3);
        assert!((d.mean() - 2.0).abs() < 1e-12);
        let json = snap.to_json();
        assert!(json.contains(r#""sketches":{"sim.sojourn":"#), "{json}");
        assert!(json.contains(r#""p99":"#), "{json}");
    }

    #[test]
    fn histogram_json_includes_quantiles() {
        let reg = Registry::new();
        let h = reg.histogram("h");
        for v in [1, 2, 3, 100] {
            h.record(v);
        }
        let json = reg.snapshot().to_json();
        assert!(json.contains(r#""p50":"#), "{json}");
        assert!(json.contains(r#""p90":"#), "{json}");
    }
}
