//! Event sinks.
//!
//! A [`Recorder`] receives [`Event`]s from instrumented code. Hot loops
//! are expected to cache [`Recorder::enabled`] in a local once per
//! run/batch and skip event construction entirely when it is `false`,
//! which makes the disabled path (a [`NullRecorder`]) essentially free.

use crate::event::{Event, JobEventKind, SimEventKind};
use crate::registry::{Counter, Gauge, Registry};
use std::io::Write;
use std::sync::{Arc, Mutex};

/// A sink for structured events.
pub trait Recorder {
    /// Whether this recorder wants events at all.
    ///
    /// Instrumented loops should read this once (per run, per batch)
    /// and branch on the cached value; the default is `true`.
    fn enabled(&self) -> bool {
        true
    }

    /// Accept one event.
    fn record(&mut self, ev: &Event);

    /// Flush any buffered output. Default: no-op.
    fn flush(&mut self) {}
}

impl<R: Recorder + ?Sized> Recorder for Box<R> {
    fn enabled(&self) -> bool {
        (**self).enabled()
    }

    fn record(&mut self, ev: &Event) {
        (**self).record(ev);
    }

    fn flush(&mut self) {
        (**self).flush();
    }
}

/// The do-nothing recorder: `enabled()` is `false` so instrumented code
/// skips event construction entirely.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&mut self, _ev: &Event) {}
}

/// Tallies of events seen by a [`CountingRecorder`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct EventCounts {
    /// Accepted solver steps.
    pub solver_accepted: u64,
    /// Rejected solver steps.
    pub solver_rejected: u64,
    /// Steady-state residual samples.
    pub solver_steady: u64,
    /// Solver end-of-integration summaries.
    pub solver_done: u64,
    /// Task arrivals.
    pub arrivals: u64,
    /// Task completions.
    pub completions: u64,
    /// Steal attempts.
    pub steal_attempts: u64,
    /// Successful steals.
    pub steal_successes: u64,
    /// Migration events.
    pub migrations: u64,
    /// Tasks moved across processors (sum of migration multiplicities).
    pub tasks_migrated: u64,
    /// Job lifecycle events (all four stages; only emitted when job
    /// tracing is opted into).
    pub job_events: u64,
    /// Empirical tail-vector snapshots (only emitted when transient
    /// sampling is opted into).
    pub tail_samples: u64,
    /// Heartbeats.
    pub heartbeats: u64,
    /// Finished replications.
    pub replicates: u64,
    /// Longest consecutive step-rejection streak reported by any
    /// `solver_done` summary (a stiffness hint; not an event count).
    pub solver_max_reject_streak: u64,
}

impl EventCounts {
    /// Total events tallied.
    pub fn total(&self) -> u64 {
        self.solver_accepted
            + self.solver_rejected
            + self.solver_steady
            + self.solver_done
            + self.arrivals
            + self.completions
            + self.steal_attempts
            + self.steal_successes
            + self.migrations
            + self.job_events
            + self.tail_samples
            + self.heartbeats
            + self.replicates
    }
}

/// A recorder that keeps in-memory tallies — cheap enough for tests and
/// for overhead measurements, and the basis of metrics aggregation.
#[derive(Debug, Default, Clone)]
pub struct CountingRecorder {
    counts: EventCounts,
}

impl CountingRecorder {
    /// Fresh recorder with zeroed tallies.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot of the tallies so far.
    pub fn counts(&self) -> EventCounts {
        self.counts
    }
}

impl Recorder for CountingRecorder {
    fn record(&mut self, ev: &Event) {
        let c = &mut self.counts;
        match *ev {
            Event::SolverStep { accepted, .. } => {
                if accepted {
                    c.solver_accepted += 1;
                } else {
                    c.solver_rejected += 1;
                }
            }
            Event::SolverSteady { .. } => c.solver_steady += 1,
            Event::SolverDone {
                max_reject_streak, ..
            } => {
                c.solver_done += 1;
                c.solver_max_reject_streak = c.solver_max_reject_streak.max(max_reject_streak);
            }
            Event::Sim { kind, count, .. } => match kind {
                SimEventKind::Arrival => c.arrivals += 1,
                SimEventKind::Completion => c.completions += 1,
                SimEventKind::StealAttempt => c.steal_attempts += 1,
                SimEventKind::StealSuccess => c.steal_successes += 1,
                SimEventKind::Migration => {
                    c.migrations += 1;
                    c.tasks_migrated += count as u64;
                }
            },
            Event::Job { .. } => c.job_events += 1,
            Event::TailSample { .. } => c.tail_samples += 1,
            Event::Heartbeat { .. } => c.heartbeats += 1,
            Event::ReplicateDone { .. } => c.replicates += 1,
        }
    }
}

/// Streams events as NDJSON (one JSON object per line) to any writer.
///
/// Emission is **batched**: rendered lines accumulate in an internal
/// buffer and reach the writer in [`NdjsonRecorder::BATCH_BYTES`]
/// chunks, so a million-event trace costs hundreds of `write` calls,
/// not millions — the amortization that keeps tracing affordable at
/// n ≥ 65536 simulate scale (see `docs/telemetry.md` for the measured
/// budget). [`Recorder::flush`] and [`NdjsonRecorder::into_inner`]
/// push the partial batch through; an I/O error is detected at the
/// batch boundary that hits it and is sticky from then on.
#[derive(Debug)]
pub struct NdjsonRecorder<W: Write> {
    w: W,
    buf: String,
    lines: u64,
    /// First I/O error encountered, if any; recording keeps counting
    /// but stops writing.
    error: Option<std::io::Error>,
}

impl<W: Write> NdjsonRecorder<W> {
    /// Batch size: lines are handed to the writer once at least this
    /// many bytes have accumulated (or on flush).
    pub const BATCH_BYTES: usize = 64 * 1024;

    /// Wrap a writer. Batching happens here, so a raw `File` works;
    /// a `BufWriter` adds nothing but another copy.
    pub fn new(w: W) -> Self {
        Self {
            w,
            buf: String::with_capacity(Self::BATCH_BYTES + 256),
            lines: 0,
            error: None,
        }
    }

    /// Lines written (or attempted) so far.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// First I/O error encountered while writing, if any. Only errors
    /// from batches already pushed are visible; flush first for an
    /// up-to-date answer.
    pub fn io_error(&self) -> Option<&std::io::Error> {
        self.error.as_ref()
    }

    /// Flush and return the inner writer (and the first error, if any).
    pub fn into_inner(mut self) -> (W, Option<std::io::Error>) {
        self.write_batch();
        if self.error.is_none() {
            if let Err(e) = self.w.flush() {
                self.error = Some(e);
            }
        }
        (self.w, self.error)
    }

    /// Write one pre-rendered NDJSON line verbatim (the trace-header
    /// path; [`Recorder::record`] covers ordinary events). Counts
    /// toward [`NdjsonRecorder::lines`] and shares the batching and
    /// sticky-error behavior.
    pub fn write_line(&mut self, line: &str) {
        self.lines += 1;
        if self.error.is_some() {
            return;
        }
        self.buf.push_str(line);
        self.buf.push('\n');
        if self.buf.len() >= Self::BATCH_BYTES {
            self.write_batch();
        }
    }

    /// Push the accumulated batch to the writer.
    fn write_batch(&mut self) {
        if self.buf.is_empty() {
            return;
        }
        if self.error.is_none() {
            if let Err(e) = self.w.write_all(self.buf.as_bytes()) {
                self.error = Some(e);
            }
        }
        self.buf.clear();
    }
}

impl<W: Write> Recorder for NdjsonRecorder<W> {
    fn record(&mut self, ev: &Event) {
        self.write_line(&ev.to_json_line());
    }

    fn flush(&mut self) {
        self.write_batch();
        if self.error.is_none() {
            if let Err(e) = self.w.flush() {
                self.error = Some(e);
            }
        }
    }
}

/// A recorder that buffers every event in memory, in arrival order.
///
/// The in-process analogue of tracing to a file and reading it back:
/// the verify harness and tests feed one run's events straight into the
/// trace-replay machinery without serializing. Unbounded — meant for
/// bounded runs, not servers.
#[derive(Debug, Default, Clone)]
pub struct CollectingRecorder {
    events: Vec<Event>,
}

impl CollectingRecorder {
    /// Fresh, empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// The events recorded so far, in order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Consume the recorder, yielding the event buffer.
    pub fn into_events(self) -> Vec<Event> {
        self.events
    }
}

impl Recorder for CollectingRecorder {
    fn record(&mut self, ev: &Event) {
        self.events.push(*ev);
    }
}

/// A recorder that folds events into a live [`Registry`], so an
/// in-flight run can be scraped (e.g. by the Prometheus endpoint)
/// while it executes.
///
/// Metric handles are resolved once at construction; recording an event
/// is a handful of relaxed atomic adds, no map lookups.
#[derive(Debug)]
pub struct RegistryRecorder {
    registry: Arc<Registry>,
    arrivals: Arc<Counter>,
    completions: Arc<Counter>,
    steal_attempts: Arc<Counter>,
    steal_successes: Arc<Counter>,
    migrations: Arc<Counter>,
    tasks_migrated: Arc<Counter>,
    job_arrivals: Arc<Counter>,
    job_migrations: Arc<Counter>,
    job_service_starts: Arc<Counter>,
    job_completions: Arc<Counter>,
    heartbeats: Arc<Counter>,
    replicates: Arc<Counter>,
    solver_accepted: Arc<Counter>,
    solver_rejected: Arc<Counter>,
    tail_samples: Arc<Counter>,
    tail_gauges: Vec<Arc<Gauge>>,
    transient: Option<TransientGauges>,
    sim_t: Arc<Gauge>,
    tasks_in_system: Arc<Gauge>,
    events_per_sec: Arc<Gauge>,
}

impl RegistryRecorder {
    /// Attach to a registry. Counter/gauge names follow the
    /// `sim.*`/`solver.*` scheme used by the CLI metrics documents.
    pub fn new(registry: Arc<Registry>) -> Self {
        Self {
            arrivals: registry.counter("sim.arrivals"),
            completions: registry.counter("sim.completions"),
            steal_attempts: registry.counter("sim.steal_attempts"),
            steal_successes: registry.counter("sim.steal_successes"),
            migrations: registry.counter("sim.migrations"),
            tasks_migrated: registry.counter("sim.tasks_migrated"),
            job_arrivals: registry.counter("job.arrivals"),
            job_migrations: registry.counter("job.migrations"),
            job_service_starts: registry.counter("job.service_starts"),
            job_completions: registry.counter("job.completions"),
            heartbeats: registry.counter("sim.heartbeats"),
            replicates: registry.counter("sim.replicates_done"),
            solver_accepted: registry.counter("solver.steps_accepted"),
            solver_rejected: registry.counter("solver.steps_rejected"),
            tail_samples: registry.counter("sim.tail_samples"),
            tail_gauges: (1..=crate::event::TAIL_SAMPLE_DEPTH)
                .map(|i| registry.gauge(&format!("sim.tail_s{i}")))
                .collect(),
            transient: None,
            sim_t: registry.gauge("sim.t"),
            tasks_in_system: registry.gauge("sim.tasks_in_system"),
            events_per_sec: registry.gauge("sim.events_per_sec"),
            registry,
        }
    }

    /// The registry this recorder feeds.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Attach a mean-field reference trajectory: every incoming
    /// [`Event::TailSample`] is then matched against the reference grid
    /// and the drift published live as `transient.residual_s<i>`
    /// (signed, per tail), `transient.residual_sup` (instantaneous),
    /// `transient.residual_sup_max` (running worst case), and
    /// `transient.relaxation_time` (NaN until the sample stream has
    /// entered — and stayed in — the ε-ball around the fixed point).
    pub fn with_tail_reference(mut self, reference: TailReference) -> Self {
        let per_tail = (1..=crate::event::TAIL_SAMPLE_DEPTH)
            .map(|i| self.registry.gauge(&format!("transient.residual_s{i}")))
            .collect();
        let tg = TransientGauges {
            reference,
            per_tail,
            sup: self.registry.gauge("transient.residual_sup"),
            sup_max: self.registry.gauge("transient.residual_sup_max"),
            relaxation: self.registry.gauge("transient.relaxation_time"),
            relaxed_since: None,
            worst: 0.0,
        };
        tg.relaxation.set(f64::NAN);
        self.transient = Some(tg);
        self
    }
}

/// A mean-field reference trajectory for live drift gauges — plain
/// data (integrate it with the core crate and pass it in), so this
/// crate stays ODE-free.
#[derive(Debug, Clone)]
pub struct TailReference {
    /// Reference instants `(t, s₁(t)…s₈(t))`, time-ascending, on the
    /// same grid the simulator samples on (`--sample-tails <dt>`).
    pub grid: Vec<(f64, [f64; crate::event::TAIL_SAMPLE_DEPTH])>,
    /// Fixed-point tails `s*₁…s*₈`.
    pub fixed_point: [f64; crate::event::TAIL_SAMPLE_DEPTH],
    /// Relaxation threshold ε for `transient.relaxation_time`.
    pub epsilon: f64,
}

#[derive(Debug)]
struct TransientGauges {
    reference: TailReference,
    per_tail: Vec<Arc<Gauge>>,
    sup: Arc<Gauge>,
    sup_max: Arc<Gauge>,
    relaxation: Arc<Gauge>,
    relaxed_since: Option<f64>,
    worst: f64,
}

impl TransientGauges {
    fn observe(&mut self, t: f64, tails: &[f64; crate::event::TAIL_SAMPLE_DEPTH]) {
        let r = &self.reference;
        // Nearest reference instant within tolerance; samples off the
        // grid (a foreign trace) are simply not compared.
        let i = r.grid.partition_point(|(gt, _)| *gt < t);
        let tol = 1e-9 * t.abs().max(1.0);
        let idx = if i < r.grid.len() && (r.grid[i].0 - t).abs() <= tol {
            i
        } else if i > 0 && (r.grid[i - 1].0 - t).abs() <= tol {
            i - 1
        } else {
            return;
        };
        let reference = &r.grid[idx].1;
        let mut sup = 0.0f64;
        for (g, (hat, s)) in self.per_tail.iter().zip(tails.iter().zip(reference)) {
            let resid = hat - s;
            g.set(resid);
            sup = sup.max(resid.abs());
        }
        self.sup.set(sup);
        if sup > self.worst {
            self.worst = sup;
            self.sup_max.set(sup);
        }
        let dev = tails
            .iter()
            .zip(&r.fixed_point)
            .map(|(hat, fp)| (hat - fp).abs())
            .fold(0.0f64, f64::max);
        if dev <= r.epsilon {
            let since = *self.relaxed_since.get_or_insert(t);
            self.relaxation.set(since);
        } else {
            self.relaxed_since = None;
            self.relaxation.set(f64::NAN);
        }
    }
}

impl Recorder for RegistryRecorder {
    fn record(&mut self, ev: &Event) {
        match *ev {
            Event::SolverStep { accepted, .. } => {
                if accepted {
                    self.solver_accepted.inc();
                } else {
                    self.solver_rejected.inc();
                }
            }
            Event::SolverSteady { .. } | Event::SolverDone { .. } => {}
            Event::Sim { kind, count, .. } => match kind {
                SimEventKind::Arrival => self.arrivals.inc(),
                SimEventKind::Completion => self.completions.inc(),
                SimEventKind::StealAttempt => self.steal_attempts.inc(),
                SimEventKind::StealSuccess => self.steal_successes.inc(),
                SimEventKind::Migration => {
                    self.migrations.inc();
                    self.tasks_migrated.add(count as u64);
                }
            },
            Event::Job { kind, .. } => match kind {
                JobEventKind::Arrival => self.job_arrivals.inc(),
                JobEventKind::Migrate => self.job_migrations.inc(),
                JobEventKind::ServiceStart => self.job_service_starts.inc(),
                JobEventKind::Completion => self.job_completions.inc(),
            },
            Event::TailSample { t, tails, depth } => {
                self.tail_samples.inc();
                self.sim_t.set(t);
                for (g, &s) in self.tail_gauges.iter().zip(&tails).take(depth as usize) {
                    g.set(s);
                }
                if let Some(tg) = self.transient.as_mut() {
                    tg.observe(t, &tails);
                }
            }
            Event::Heartbeat {
                t, tasks_in_system, ..
            } => {
                self.heartbeats.inc();
                self.sim_t.set(t);
                self.tasks_in_system.set(tasks_in_system as f64);
            }
            Event::ReplicateDone { events_per_sec, .. } => {
                self.replicates.inc();
                self.events_per_sec.set(events_per_sec);
            }
        }
    }
}

/// A cloneable handle that lets several owners (e.g. replication worker
/// threads) feed one underlying recorder through a mutex.
#[derive(Debug)]
pub struct SharedRecorder<R: Recorder> {
    inner: Arc<Mutex<R>>,
    enabled: bool,
}

impl<R: Recorder> Clone for SharedRecorder<R> {
    fn clone(&self) -> Self {
        Self {
            inner: Arc::clone(&self.inner),
            enabled: self.enabled,
        }
    }
}

impl<R: Recorder> SharedRecorder<R> {
    /// Wrap a recorder for shared use. The `enabled` hint is sampled
    /// once here (lock-free reads afterwards).
    pub fn new(inner: R) -> Self {
        let enabled = inner.enabled();
        Self {
            inner: Arc::new(Mutex::new(inner)),
            enabled,
        }
    }

    /// Run `f` against the underlying recorder.
    pub fn with<T>(&self, f: impl FnOnce(&mut R) -> T) -> T {
        f(&mut self.inner.lock().expect("recorder mutex poisoned"))
    }

    /// Unwrap if this is the last handle; otherwise returns `None`.
    pub fn try_into_inner(self) -> Option<R> {
        Arc::try_unwrap(self.inner)
            .ok()
            .map(|m| m.into_inner().expect("recorder mutex poisoned"))
    }
}

impl<R: Recorder> Recorder for SharedRecorder<R> {
    fn enabled(&self) -> bool {
        self.enabled
    }

    fn record(&mut self, ev: &Event) {
        self.inner
            .lock()
            .expect("recorder mutex poisoned")
            .record(ev);
    }

    fn flush(&mut self) {
        self.inner.lock().expect("recorder mutex poisoned").flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim(kind: SimEventKind, count: u32) -> Event {
        Event::Sim {
            kind,
            t: 1.0,
            proc: 0,
            src: None,
            count,
        }
    }

    #[test]
    fn null_recorder_reports_disabled() {
        assert!(!NullRecorder.enabled());
    }

    #[test]
    fn counting_recorder_tallies_by_kind() {
        let mut r = CountingRecorder::new();
        r.record(&sim(SimEventKind::Arrival, 1));
        r.record(&sim(SimEventKind::Arrival, 1));
        r.record(&sim(SimEventKind::StealAttempt, 1));
        r.record(&sim(SimEventKind::StealSuccess, 1));
        r.record(&sim(SimEventKind::Migration, 5));
        r.record(&Event::SolverStep {
            accepted: false,
            t: 0.0,
            h: 0.1,
            err_norm: 2.0,
        });
        let c = r.counts();
        assert_eq!(c.arrivals, 2);
        assert_eq!(c.steal_attempts, 1);
        assert_eq!(c.steal_successes, 1);
        assert_eq!(c.migrations, 1);
        assert_eq!(c.tasks_migrated, 5);
        assert_eq!(c.solver_rejected, 1);
        assert_eq!(c.total(), 6);
    }

    fn job(kind: JobEventKind, job: u64) -> Event {
        Event::Job {
            kind,
            t: 1.0,
            job,
            proc: 0,
            src: None,
            delay: 0.0,
        }
    }

    #[test]
    fn counting_recorder_tallies_job_events() {
        let mut r = CountingRecorder::new();
        r.record(&job(JobEventKind::Arrival, 1));
        r.record(&job(JobEventKind::ServiceStart, 1));
        r.record(&job(JobEventKind::Completion, 1));
        let c = r.counts();
        assert_eq!(c.job_events, 3);
        assert_eq!(c.total(), 3);
    }

    #[test]
    fn collecting_recorder_preserves_order() {
        let mut r = CollectingRecorder::new();
        r.record(&job(JobEventKind::Arrival, 7));
        r.record(&job(JobEventKind::Completion, 7));
        assert_eq!(r.events().len(), 2);
        let events = r.into_events();
        assert!(matches!(
            events[0],
            Event::Job {
                kind: JobEventKind::Arrival,
                job: 7,
                ..
            }
        ));
        assert!(matches!(
            events[1],
            Event::Job {
                kind: JobEventKind::Completion,
                job: 7,
                ..
            }
        ));
    }

    #[test]
    fn registry_recorder_feeds_job_counters() {
        let reg = Arc::new(Registry::new());
        let mut r = RegistryRecorder::new(Arc::clone(&reg));
        r.record(&job(JobEventKind::Arrival, 1));
        r.record(&job(JobEventKind::Migrate, 1));
        r.record(&job(JobEventKind::ServiceStart, 1));
        r.record(&job(JobEventKind::Completion, 1));
        let snap = reg.snapshot();
        assert_eq!(snap.counters["job.arrivals"], 1);
        assert_eq!(snap.counters["job.migrations"], 1);
        assert_eq!(snap.counters["job.service_starts"], 1);
        assert_eq!(snap.counters["job.completions"], 1);
    }

    #[test]
    fn recorders_tally_tail_samples() {
        let sample = Event::TailSample {
            t: 5.0,
            tails: [0.9, 0.5, 0.2, 0.0, 0.0, 0.0, 0.0, 0.0],
            depth: 3,
        };
        let mut c = CountingRecorder::new();
        c.record(&sample);
        assert_eq!(c.counts().tail_samples, 1);
        assert_eq!(c.counts().total(), 1);

        let reg = Arc::new(Registry::new());
        let mut r = RegistryRecorder::new(Arc::clone(&reg));
        r.record(&sample);
        let snap = reg.snapshot();
        assert_eq!(snap.counters["sim.tail_samples"], 1);
        assert_eq!(snap.gauges["sim.tail_s1"], 0.9);
        assert_eq!(snap.gauges["sim.tail_s3"], 0.2);
        // Entries past `depth` keep their registered default.
        assert_eq!(snap.gauges["sim.tail_s4"], 0.0);
        assert_eq!(snap.gauges["sim.t"], 5.0);
    }

    #[test]
    fn tail_reference_publishes_live_drift_gauges() {
        let fp = [0.5, 0.25, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0];
        let reference = TailReference {
            grid: vec![
                (1.0, [0.4, 0.1, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0]),
                (2.0, [0.5, 0.25, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0]),
            ],
            fixed_point: fp,
            epsilon: 0.02,
        };
        let reg = Arc::new(Registry::new());
        let mut r = RegistryRecorder::new(Arc::clone(&reg)).with_tail_reference(reference);

        // Off the ε-ball at t = 1: residual +0.1 on s₁, not relaxed.
        r.record(&Event::TailSample {
            t: 1.0,
            tails: [0.5, 0.1, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
            depth: 2,
        });
        let snap = reg.snapshot();
        assert!((snap.gauges["transient.residual_s1"] - 0.1).abs() < 1e-12);
        assert!((snap.gauges["transient.residual_sup"] - 0.1).abs() < 1e-12);
        assert!(snap.gauges["transient.relaxation_time"].is_nan());

        // Inside the ε-ball at t = 2: relaxation clock latches.
        r.record(&Event::TailSample {
            t: 2.0,
            tails: [0.51, 0.25, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
            depth: 2,
        });
        let snap = reg.snapshot();
        assert!((snap.gauges["transient.residual_s1"] - 0.01).abs() < 1e-12);
        assert!((snap.gauges["transient.residual_sup_max"] - 0.1).abs() < 1e-12);
        assert_eq!(snap.gauges["transient.relaxation_time"], 2.0);

        // A sample off the reference grid is ignored, not mismatched.
        r.record(&Event::TailSample {
            t: 2.7,
            tails: [0.9, 0.9, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
            depth: 2,
        });
        let snap = reg.snapshot();
        assert!((snap.gauges["transient.residual_sup"] - 0.01).abs() < 1e-12);
    }

    #[test]
    fn ndjson_recorder_writes_one_line_per_event() {
        let mut r = NdjsonRecorder::new(Vec::new());
        r.record(&sim(SimEventKind::Completion, 1));
        r.record(&Event::Heartbeat {
            t: 2.0,
            events: 10,
            tasks_in_system: 3,
        });
        r.flush();
        let (buf, err) = r.into_inner();
        assert!(err.is_none());
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
        assert!(text.contains("\"ev\":\"completion\""));
        assert!(text.contains("\"ev\":\"heartbeat\""));
    }

    #[test]
    fn ndjson_recorder_amortizes_write_calls() {
        use std::rc::Rc;
        /// Counts `write` calls so the batching is observable.
        struct CountingWriter {
            calls: std::rc::Rc<std::cell::Cell<usize>>,
            out: Vec<u8>,
        }
        impl std::io::Write for CountingWriter {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.calls.set(self.calls.get() + 1);
                self.out.extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let calls = std::rc::Rc::new(std::cell::Cell::new(0));
        let mut r = NdjsonRecorder::new(CountingWriter {
            calls: Rc::clone(&calls),
            out: Vec::new(),
        });
        let n = 20_000u64;
        for i in 0..n {
            r.record(&Event::Sim {
                kind: SimEventKind::Arrival,
                t: i as f64,
                proc: 0,
                src: None,
                count: 1,
            });
        }
        let (w, err) = r.into_inner();
        assert!(err.is_none());
        assert!(
            calls.get() < 100,
            "{n} events must batch into few writes, got {}",
            calls.get()
        );
        let text = String::from_utf8(w.out).unwrap();
        assert_eq!(text.lines().count(), n as usize);
    }

    #[test]
    fn shared_recorder_funnels_to_one_sink() {
        let shared = SharedRecorder::new(CountingRecorder::new());
        assert!(shared.enabled());
        let mut a = shared.clone();
        let mut b = shared.clone();
        a.record(&sim(SimEventKind::Arrival, 1));
        b.record(&sim(SimEventKind::Completion, 1));
        drop(a);
        drop(b);
        let counts = shared.with(|r| r.counts());
        assert_eq!(counts.arrivals, 1);
        assert_eq!(counts.completions, 1);
    }

    #[test]
    fn shared_null_recorder_stays_disabled() {
        let shared = SharedRecorder::new(NullRecorder);
        assert!(!shared.enabled());
    }

    #[test]
    fn registry_recorder_feeds_live_metrics() {
        let reg = Arc::new(Registry::new());
        let mut r = RegistryRecorder::new(Arc::clone(&reg));
        r.record(&sim(SimEventKind::Arrival, 1));
        r.record(&sim(SimEventKind::StealSuccess, 1));
        r.record(&sim(SimEventKind::Migration, 4));
        r.record(&Event::Heartbeat {
            t: 9.5,
            events: 100,
            tasks_in_system: 7,
        });
        r.record(&Event::ReplicateDone {
            seed: 1,
            wall_ms: 2.0,
            events: 100,
            events_per_sec: 50_000.0,
        });
        let snap = reg.snapshot();
        assert_eq!(snap.counters["sim.arrivals"], 1);
        assert_eq!(snap.counters["sim.steal_successes"], 1);
        assert_eq!(snap.counters["sim.tasks_migrated"], 4);
        assert_eq!(snap.counters["sim.replicates_done"], 1);
        assert_eq!(snap.gauges["sim.t"], 9.5);
        assert_eq!(snap.gauges["sim.tasks_in_system"], 7.0);
        assert_eq!(snap.gauges["sim.events_per_sec"], 50_000.0);
        // The same registry handle observes updates live.
        assert!(r.registry().snapshot().counters["sim.arrivals"] == 1);
    }
}
