//! Run manifests: the reproducibility header that turns a metrics
//! report into a self-describing artifact.
//!
//! The document schema (`loadsteal.run.v1`) is:
//!
//! ```json
//! {
//!   "schema": "loadsteal.run.v1",
//!   "manifest": {
//!     "version": "0.1.0",
//!     "git": "abc1234",          // omitted when unknown
//!     "command": "simulate --n 64 ...",
//!     "seed": 12345,             // omitted when not applicable
//!     "config": { "n": 64, ... } // free-form key/value pairs
//!   },
//!   "metrics": { "counters": ..., "gauges": ..., "histograms": ... }
//! }
//! ```

use crate::json::JsonBuf;
use crate::registry::MetricsReport;

/// Schema identifier written into every run document.
pub const SCHEMA: &str = "loadsteal.run.v1";

/// A typed configuration value for the manifest `config` map.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigValue {
    /// A string.
    Str(String),
    /// A float.
    F64(f64),
    /// An unsigned integer.
    U64(u64),
    /// A boolean.
    Bool(bool),
}

impl From<&str> for ConfigValue {
    fn from(v: &str) -> Self {
        Self::Str(v.to_owned())
    }
}
impl From<String> for ConfigValue {
    fn from(v: String) -> Self {
        Self::Str(v)
    }
}
impl From<f64> for ConfigValue {
    fn from(v: f64) -> Self {
        Self::F64(v)
    }
}
impl From<u64> for ConfigValue {
    fn from(v: u64) -> Self {
        Self::U64(v)
    }
}
impl From<usize> for ConfigValue {
    fn from(v: usize) -> Self {
        Self::U64(v as u64)
    }
}
impl From<bool> for ConfigValue {
    fn from(v: bool) -> Self {
        Self::Bool(v)
    }
}

/// Everything needed to rerun (and trust) a run.
#[derive(Debug, Clone, Default)]
pub struct RunManifest {
    /// Crate version (`CARGO_PKG_VERSION`).
    pub version: String,
    /// Git revision, when built from a checkout.
    pub git: Option<String>,
    /// The subcommand and flags as invoked.
    pub command: String,
    /// Base RNG seed, for seeded runs.
    pub seed: Option<u64>,
    /// Resolved configuration (insertion order preserved).
    pub config: Vec<(String, ConfigValue)>,
}

impl RunManifest {
    /// Start a manifest for `command` at `version`.
    pub fn new(version: &str, command: &str) -> Self {
        Self {
            version: version.to_owned(),
            command: command.to_owned(),
            ..Self::default()
        }
    }

    /// Record one resolved configuration entry.
    pub fn config(&mut self, key: &str, value: impl Into<ConfigValue>) -> &mut Self {
        self.config.push((key.to_owned(), value.into()));
        self
    }

    /// Serialize just the manifest object onto `j`.
    pub fn write_json(&self, j: &mut JsonBuf) {
        j.begin_obj();
        j.field_str("version", &self.version);
        if let Some(git) = &self.git {
            j.field_str("git", git);
        }
        j.field_str("command", &self.command);
        if let Some(seed) = self.seed {
            j.field_u64("seed", seed);
        }
        j.key("config").begin_obj();
        for (k, v) in &self.config {
            match v {
                ConfigValue::Str(s) => j.field_str(k, s),
                ConfigValue::F64(x) => j.field_f64(k, *x),
                ConfigValue::U64(x) => j.field_u64(k, *x),
                ConfigValue::Bool(b) => j.field_bool(k, *b),
            };
        }
        j.end_obj();
        j.end_obj();
    }

    /// Render the full `loadsteal.run.v1` document: manifest plus
    /// metrics snapshot.
    pub fn to_run_document(&self, metrics: &MetricsReport) -> String {
        let mut j = JsonBuf::new();
        j.begin_obj();
        j.field_str("schema", SCHEMA);
        j.key("manifest");
        self.write_json(&mut j);
        j.key("metrics");
        metrics.write_json(&mut j);
        j.end_obj();
        j.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    #[test]
    fn manifest_renders_all_fields() {
        let mut m = RunManifest::new("0.1.0", "simulate --n 64");
        m.git = Some("abc1234".into());
        m.seed = Some(99);
        m.config("n", 64usize)
            .config("lambda", 0.9)
            .config("policy", "simple");

        let mut j = JsonBuf::new();
        m.write_json(&mut j);
        let s = j.finish();
        assert!(s.contains(r#""version":"0.1.0""#), "{s}");
        assert!(s.contains(r#""git":"abc1234""#), "{s}");
        assert!(s.contains(r#""seed":99"#), "{s}");
        assert!(
            s.contains(r#""config":{"n":64,"lambda":0.9,"policy":"simple"}"#),
            "{s}"
        );
    }

    #[test]
    fn optional_fields_are_omitted() {
        let m = RunManifest::new("0.1.0", "solve");
        let mut j = JsonBuf::new();
        m.write_json(&mut j);
        let s = j.finish();
        assert!(!s.contains("git"), "{s}");
        assert!(!s.contains("seed"), "{s}");
    }

    #[test]
    fn run_document_embeds_schema_manifest_and_metrics() {
        let reg = Registry::new();
        reg.counter("sim.events").add(10);
        let doc = RunManifest::new("0.1.0", "simulate").to_run_document(&reg.snapshot());
        assert!(
            doc.starts_with(&format!(r#"{{"schema":"{SCHEMA}""#)),
            "{doc}"
        );
        assert!(doc.contains(r#""manifest":{"#), "{doc}");
        assert!(
            doc.contains(r#""metrics":{"counters":{"sim.events":10}"#),
            "{doc}"
        );
        assert!(doc.ends_with("}}"), "{doc}");
    }
}
