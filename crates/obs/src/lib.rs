//! `loadsteal-obs` — the observability layer of the loadsteal
//! workspace: structured tracing, a metrics registry, and run
//! manifests, with zero heavy dependencies.
//!
//! The crate is organized around four ideas:
//!
//! * **Typed events** ([`Event`]): everything the solver and the
//!   simulator can report — ODE step acceptances/rejections,
//!   steady-state convergence residuals, per-event simulator activity,
//!   progress heartbeats, and per-replicate throughput.
//! * **Recorders** ([`Recorder`]): sinks for those events.
//!   [`NullRecorder`] is free (its `enabled()` hint lets hot loops skip
//!   event construction entirely), [`CountingRecorder`] aggregates
//!   in-memory tallies, [`NdjsonRecorder`] streams one JSON object per
//!   event line, [`SharedRecorder`] makes any sink shareable across
//!   replication worker threads, and [`ShardedRecorder`] gives each
//!   producer thread its own contention-free shard, merge-sorted back
//!   into one globally ordered stream on drain (the executor's trace
//!   path — see `docs/telemetry.md`).
//! * **Metrics** ([`registry::Registry`]): named counters, gauges, and
//!   log2-bucketed histograms, snapshottable into a JSON
//!   [`registry::MetricsReport`] — the machine-readable footprint of a
//!   run.
//! * **Manifests** ([`manifest::RunManifest`]): the reproducibility
//!   header (command, version, seed, configuration) that turns a
//!   metrics report into a self-describing artifact.
//!
//! Supporting cast: [`json`] is the hand-rolled JSON writer/parser pair
//! everything serializes through (no serde), [`sketch`] provides
//! streaming quantile estimators (P² and a mergeable digest), [`prom`]
//! renders any [`registry::MetricsReport`] in Prometheus text format,
//! [`timer`] provides scoped wall-clock timers feeding histograms,
//! [`span`] is the hierarchical span profiler (Chrome-trace and
//! folded-stack exports), [`flight`] is the crash-safe flight recorder
//! whose panic hook dumps the recent event ring, and [`log`] is the
//! `LOADSTEAL_LOG` env-filtered diagnostic logger.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod flight;
pub mod json;
pub mod log;
pub mod manifest;
pub mod prom;
pub mod recorder;
pub mod registry;
pub mod shard;
pub mod sketch;
pub mod span;
pub mod timer;

pub use event::{Event, JobEventKind, SimEventKind, TraceHeader, TAIL_SAMPLE_DEPTH, TRACE_SCHEMA};
pub use flight::PanicRecord;
pub use manifest::{ConfigValue, RunManifest};
pub use prom::prometheus_text;
pub use recorder::{
    CollectingRecorder, CountingRecorder, EventCounts, NdjsonRecorder, NullRecorder, Recorder,
    RegistryRecorder, SharedRecorder, TailReference,
};
pub use registry::{Counter, Gauge, Histogram, MetricsReport, Registry, ShardedCounter, Sketch};
pub use shard::{ShardSink, ShardedRecorder};
pub use sketch::{Digest, P2Quantile};
pub use span::{ProfileReport, SpanAggregate, SpanGuard, SpanInstance, SpanRecord, ThreadProfile};
pub use timer::{ScopedTimer, Stopwatch};
