//! A minimal hand-rolled JSON writer.
//!
//! The workspace deliberately avoids serde; every serialized artifact
//! (NDJSON trace lines, metrics reports, run manifests) goes through
//! [`JsonBuf`], which handles comma placement, string escaping, and
//! non-finite floats (serialized as `null`, since JSON has no
//! infinities).

/// An append-only JSON document builder.
///
/// Objects and arrays are opened/closed explicitly; the builder tracks
/// whether a separator comma is needed at each nesting level. Misuse
/// (closing more than was opened) panics in debug builds and produces
/// invalid JSON in release — callers are internal and tested.
#[derive(Debug, Default)]
pub struct JsonBuf {
    out: String,
    /// One "needs a comma before the next item" flag per open scope.
    stack: Vec<bool>,
}

impl JsonBuf {
    /// Fresh empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consume the builder, returning the document.
    pub fn finish(self) -> String {
        debug_assert!(self.stack.is_empty(), "unclosed JSON scopes");
        self.out
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.out.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.out.is_empty()
    }

    fn sep(&mut self) {
        if let Some(needs) = self.stack.last_mut() {
            if *needs {
                self.out.push(',');
            }
            *needs = true;
        }
    }

    /// Open an object as the next value.
    pub fn begin_obj(&mut self) -> &mut Self {
        self.sep();
        self.out.push('{');
        self.stack.push(false);
        self
    }

    /// Close the innermost object.
    pub fn end_obj(&mut self) -> &mut Self {
        self.stack.pop();
        self.out.push('}');
        self
    }

    /// Open an array as the next value.
    pub fn begin_arr(&mut self) -> &mut Self {
        self.sep();
        self.out.push('[');
        self.stack.push(false);
        self
    }

    /// Close the innermost array.
    pub fn end_arr(&mut self) -> &mut Self {
        self.stack.pop();
        self.out.push(']');
        self
    }

    /// Write an object key; the next write supplies its value.
    pub fn key(&mut self, k: &str) -> &mut Self {
        self.sep();
        write_escaped(&mut self.out, k);
        self.out.push(':');
        // The value that follows must not emit another comma.
        if let Some(needs) = self.stack.last_mut() {
            *needs = false;
        }
        self
    }

    /// Write a string value.
    pub fn str_val(&mut self, v: &str) -> &mut Self {
        self.sep();
        write_escaped(&mut self.out, v);
        self
    }

    /// Write an `f64` value (`null` when non-finite).
    pub fn f64_val(&mut self, v: f64) -> &mut Self {
        self.sep();
        if v.is_finite() {
            // `{:?}` prints the shortest representation that round-trips,
            // which is also valid JSON for finite values.
            self.out.push_str(&format!("{v:?}"));
        } else {
            self.out.push_str("null");
        }
        self
    }

    /// Write a `u64` value.
    pub fn u64_val(&mut self, v: u64) -> &mut Self {
        self.sep();
        self.out.push_str(&v.to_string());
        self
    }

    /// Write an `i64` value.
    pub fn i64_val(&mut self, v: i64) -> &mut Self {
        self.sep();
        self.out.push_str(&v.to_string());
        self
    }

    /// Write a boolean value.
    pub fn bool_val(&mut self, v: bool) -> &mut Self {
        self.sep();
        self.out.push_str(if v { "true" } else { "false" });
        self
    }

    /// Write a `null` value.
    pub fn null_val(&mut self) -> &mut Self {
        self.sep();
        self.out.push_str("null");
        self
    }

    /// Splice a pre-rendered JSON value (trusted to be valid).
    pub fn raw_val(&mut self, v: &str) -> &mut Self {
        self.sep();
        self.out.push_str(v);
        self
    }

    // ---- key+value conveniences -------------------------------------

    /// `"k": "v"`.
    pub fn field_str(&mut self, k: &str, v: &str) -> &mut Self {
        self.key(k).str_val(v)
    }

    /// `"k": 1.5`.
    pub fn field_f64(&mut self, k: &str, v: f64) -> &mut Self {
        self.key(k).f64_val(v)
    }

    /// `"k": 7`.
    pub fn field_u64(&mut self, k: &str, v: u64) -> &mut Self {
        self.key(k).u64_val(v)
    }

    /// `"k": true`.
    pub fn field_bool(&mut self, k: &str, v: bool) -> &mut Self {
        self.key(k).bool_val(v)
    }
}

/// Escape `s` as a JSON string (with surrounding quotes) onto `out`.
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_document_renders() {
        let mut j = JsonBuf::new();
        j.begin_obj()
            .field_str("name", "run")
            .field_u64("seed", 42)
            .key("tails")
            .begin_arr()
            .f64_val(1.0)
            .f64_val(0.5)
            .end_arr()
            .key("inner")
            .begin_obj()
            .field_bool("ok", true)
            .end_obj()
            .end_obj();
        assert_eq!(
            j.finish(),
            r#"{"name":"run","seed":42,"tails":[1.0,0.5],"inner":{"ok":true}}"#
        );
    }

    #[test]
    fn escaping_covers_specials_and_controls() {
        let mut out = String::new();
        write_escaped(&mut out, "a\"b\\c\nd\te\u{1}f");
        assert_eq!(out, r#""a\"b\\c\nd\te\u0001f""#);
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut j = JsonBuf::new();
        j.begin_obj()
            .field_f64("inf", f64::INFINITY)
            .field_f64("nan", f64::NAN)
            .field_f64("x", 0.25)
            .end_obj();
        assert_eq!(j.finish(), r#"{"inf":null,"nan":null,"x":0.25}"#);
    }

    #[test]
    fn float_formatting_round_trips_and_is_json() {
        for v in [0.9, 1e-12, 3.541, 123456789.0, -0.0, 2e300] {
            let mut j = JsonBuf::new();
            j.f64_val(v);
            let s = j.finish();
            let parsed: f64 = s.parse().unwrap();
            assert_eq!(parsed, v, "{s}");
        }
    }
}
