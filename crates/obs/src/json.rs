//! A minimal hand-rolled JSON layer: a writer and a strict parser.
//!
//! The workspace deliberately avoids serde; every serialized artifact
//! (NDJSON trace lines, metrics reports, run manifests) goes through
//! [`JsonBuf`], which handles comma placement, string escaping, and
//! non-finite floats (serialized as `null` — the only deterministic
//! rendering, since JSON has no infinities). The inverse direction is
//! [`parse`], a strict recursive-descent parser used by the trace
//! reader: it follows the JSON grammar exactly, so bare `NaN` /
//! `Infinity` tokens and overflowing exponents are *rejected* with a
//! byte-positioned error instead of smuggling non-finite floats into
//! downstream analysis (Rust's `f64::from_str` would happily accept
//! them).

/// An append-only JSON document builder.
///
/// Objects and arrays are opened/closed explicitly; the builder tracks
/// whether a separator comma is needed at each nesting level. Misuse
/// (closing more than was opened) panics in debug builds and produces
/// invalid JSON in release — callers are internal and tested.
#[derive(Debug, Default)]
pub struct JsonBuf {
    out: String,
    /// One "needs a comma before the next item" flag per open scope.
    stack: Vec<bool>,
}

impl JsonBuf {
    /// Fresh empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consume the builder, returning the document.
    pub fn finish(self) -> String {
        debug_assert!(self.stack.is_empty(), "unclosed JSON scopes");
        self.out
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.out.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.out.is_empty()
    }

    fn sep(&mut self) {
        if let Some(needs) = self.stack.last_mut() {
            if *needs {
                self.out.push(',');
            }
            *needs = true;
        }
    }

    /// Open an object as the next value.
    pub fn begin_obj(&mut self) -> &mut Self {
        self.sep();
        self.out.push('{');
        self.stack.push(false);
        self
    }

    /// Close the innermost object.
    pub fn end_obj(&mut self) -> &mut Self {
        self.stack.pop();
        self.out.push('}');
        self
    }

    /// Open an array as the next value.
    pub fn begin_arr(&mut self) -> &mut Self {
        self.sep();
        self.out.push('[');
        self.stack.push(false);
        self
    }

    /// Close the innermost array.
    pub fn end_arr(&mut self) -> &mut Self {
        self.stack.pop();
        self.out.push(']');
        self
    }

    /// Write an object key; the next write supplies its value.
    pub fn key(&mut self, k: &str) -> &mut Self {
        self.sep();
        write_escaped(&mut self.out, k);
        self.out.push(':');
        // The value that follows must not emit another comma.
        if let Some(needs) = self.stack.last_mut() {
            *needs = false;
        }
        self
    }

    /// Write a string value.
    pub fn str_val(&mut self, v: &str) -> &mut Self {
        self.sep();
        write_escaped(&mut self.out, v);
        self
    }

    /// Write an `f64` value (`null` when non-finite).
    pub fn f64_val(&mut self, v: f64) -> &mut Self {
        self.sep();
        if v.is_finite() {
            // `{:?}` prints the shortest representation that round-trips,
            // which is also valid JSON for finite values.
            self.out.push_str(&format!("{v:?}"));
        } else {
            self.out.push_str("null");
        }
        self
    }

    /// Write a `u64` value.
    pub fn u64_val(&mut self, v: u64) -> &mut Self {
        self.sep();
        self.out.push_str(&v.to_string());
        self
    }

    /// Write an `i64` value.
    pub fn i64_val(&mut self, v: i64) -> &mut Self {
        self.sep();
        self.out.push_str(&v.to_string());
        self
    }

    /// Write a boolean value.
    pub fn bool_val(&mut self, v: bool) -> &mut Self {
        self.sep();
        self.out.push_str(if v { "true" } else { "false" });
        self
    }

    /// Write a `null` value.
    pub fn null_val(&mut self) -> &mut Self {
        self.sep();
        self.out.push_str("null");
        self
    }

    /// Splice a pre-rendered JSON value (trusted to be valid).
    pub fn raw_val(&mut self, v: &str) -> &mut Self {
        self.sep();
        self.out.push_str(v);
        self
    }

    // ---- key+value conveniences -------------------------------------

    /// `"k": "v"`.
    pub fn field_str(&mut self, k: &str, v: &str) -> &mut Self {
        self.key(k).str_val(v)
    }

    /// `"k": 1.5`.
    pub fn field_f64(&mut self, k: &str, v: f64) -> &mut Self {
        self.key(k).f64_val(v)
    }

    /// `"k": 7`.
    pub fn field_u64(&mut self, k: &str, v: u64) -> &mut Self {
        self.key(k).u64_val(v)
    }

    /// `"k": true`.
    pub fn field_bool(&mut self, k: &str, v: bool) -> &mut Self {
        self.key(k).bool_val(v)
    }
}

/// Escape `s` as a JSON string (with surrounding quotes) onto `out`.
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parsing.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always finite: the parser rejects overflow).
    Num(f64),
    /// A non-negative integer token that fits `u64` — kept exact so
    /// values above 2^53 (e.g. 64-bit seeds) survive a round trip.
    Uint(u64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object (duplicate keys: last wins).
    Obj(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Object member lookup; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            Self::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The numeric value, if this is a number (integers wider than the
    /// f64 mantissa round to the nearest representable float).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Self::Num(v) => Some(*v),
            Self::Uint(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Self::Uint(n) => Some(*n),
            Self::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= u64::MAX as f64 => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Self::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Self::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// A parse failure with the byte offset (0-based column within the
/// parsed text) where it was detected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input at which parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parse one complete JSON value (trailing whitespace allowed, trailing
/// garbage rejected).
pub fn parse(s: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        s: s.as_bytes(),
        i: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.i != p.s.len() {
        return Err(p.err("trailing garbage after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    s: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.i,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while self
            .s
            .get(self.i)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.i += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, JsonError> {
        self.skip_ws();
        self.s
            .get(self.i)
            .copied()
            .ok_or_else(|| self.err("unexpected end of input"))
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek()? != b {
            return Err(self.err(format!("expected {:?}", b as char)));
        }
        self.i += 1;
        Ok(())
    }

    fn lit(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, JsonError> {
        if self.s[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected literal {word:?}")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(JsonValue::Str(self.string()?)),
            b't' => self.lit("true", JsonValue::Bool(true)),
            b'f' => self.lit("false", JsonValue::Bool(false)),
            b'n' => self.lit("null", JsonValue::Null),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(self.err(format!("unexpected character {:?}", other as char))),
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.eat(b'{')?;
        let mut m = BTreeMap::new();
        if self.peek()? == b'}' {
            self.i += 1;
            return Ok(JsonValue::Obj(m));
        }
        loop {
            if self.peek()? != b'"' {
                return Err(self.err("expected string key"));
            }
            let k = self.string()?;
            self.eat(b':')?;
            m.insert(k, self.value()?);
            match self.peek()? {
                b',' => self.i += 1,
                b'}' => {
                    self.i += 1;
                    return Ok(JsonValue::Obj(m));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.eat(b'[')?;
        let mut v = Vec::new();
        if self.peek()? == b']' {
            self.i += 1;
            return Ok(JsonValue::Arr(v));
        }
        loop {
            v.push(self.value()?);
            match self.peek()? {
                b',' => self.i += 1,
                b']' => {
                    self.i += 1;
                    return Ok(JsonValue::Arr(v));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .s
                .get(self.i)
                .ok_or_else(|| self.err("unterminated string"))?;
            match b {
                b'"' => {
                    self.i += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.i += 1;
                    let esc = *self
                        .s
                        .get(self.i)
                        .ok_or_else(|| self.err("unterminated escape"))?;
                    self.i += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if !self.s[self.i..].starts_with(b"\\u") {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.i += 2;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(c)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                        }
                        other => return Err(self.err(format!("bad escape \\{:?}", other as char))),
                    }
                }
                0x00..=0x1f => return Err(self.err("raw control character in string")),
                _ => {
                    // Consume one UTF-8 scalar (the input is a &str, so
                    // continuation bytes are always well-formed).
                    let start = self.i;
                    self.i += 1;
                    while self.s.get(self.i).is_some_and(|b| b & 0xC0 == 0x80) {
                        self.i += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.s[start..self.i]).expect("valid UTF-8"));
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.i + 4;
        let hex = self
            .s
            .get(self.i..end)
            .and_then(|h| std::str::from_utf8(h).ok())
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.i = end;
        Ok(v)
    }

    /// Parse a number following the JSON grammar exactly — so `NaN`,
    /// `Infinity`, `01`, `.5`, and `1.` are all rejected — then refuse
    /// any value that overflows to an infinity.
    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.i;
        if self.s.get(self.i) == Some(&b'-') {
            self.i += 1;
        }
        // Integer part: `0` or a nonzero digit followed by digits.
        match self.s.get(self.i) {
            Some(b'0') => self.i += 1,
            Some(b'1'..=b'9') => {
                while self.s.get(self.i).is_some_and(u8::is_ascii_digit) {
                    self.i += 1;
                }
            }
            _ => return Err(self.err("malformed number")),
        }
        if self.s.get(self.i) == Some(&b'.') {
            self.i += 1;
            if !self.s.get(self.i).is_some_and(u8::is_ascii_digit) {
                return Err(self.err("digits required after decimal point"));
            }
            while self.s.get(self.i).is_some_and(u8::is_ascii_digit) {
                self.i += 1;
            }
        }
        if matches!(self.s.get(self.i), Some(b'e' | b'E')) {
            self.i += 1;
            if matches!(self.s.get(self.i), Some(b'+' | b'-')) {
                self.i += 1;
            }
            if !self.s.get(self.i).is_some_and(u8::is_ascii_digit) {
                return Err(self.err("digits required in exponent"));
            }
            while self.s.get(self.i).is_some_and(u8::is_ascii_digit) {
                self.i += 1;
            }
        }
        let text = std::str::from_utf8(&self.s[start..self.i]).expect("ASCII number");
        // A plain non-negative integer token that fits u64 stays exact.
        if !text.starts_with('-') && !text.contains(['.', 'e', 'E']) {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(JsonValue::Uint(n));
            }
        }
        let v: f64 = text
            .parse()
            .map_err(|_| self.err(format!("unparseable number {text:?}")))?;
        if !v.is_finite() {
            return Err(self.err(format!("number {text:?} overflows to a non-finite float")));
        }
        Ok(JsonValue::Num(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_document_renders() {
        let mut j = JsonBuf::new();
        j.begin_obj()
            .field_str("name", "run")
            .field_u64("seed", 42)
            .key("tails")
            .begin_arr()
            .f64_val(1.0)
            .f64_val(0.5)
            .end_arr()
            .key("inner")
            .begin_obj()
            .field_bool("ok", true)
            .end_obj()
            .end_obj();
        assert_eq!(
            j.finish(),
            r#"{"name":"run","seed":42,"tails":[1.0,0.5],"inner":{"ok":true}}"#
        );
    }

    #[test]
    fn escaping_covers_specials_and_controls() {
        let mut out = String::new();
        write_escaped(&mut out, "a\"b\\c\nd\te\u{1}f");
        assert_eq!(out, r#""a\"b\\c\nd\te\u0001f""#);
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut j = JsonBuf::new();
        j.begin_obj()
            .field_f64("inf", f64::INFINITY)
            .field_f64("nan", f64::NAN)
            .field_f64("x", 0.25)
            .end_obj();
        assert_eq!(j.finish(), r#"{"inf":null,"nan":null,"x":0.25}"#);
    }

    #[test]
    fn float_formatting_round_trips_and_is_json() {
        for v in [0.9, 1e-12, 3.541, 123456789.0, -0.0, 2e300] {
            let mut j = JsonBuf::new();
            j.f64_val(v);
            let s = j.finish();
            match parse(&s).unwrap() {
                JsonValue::Num(parsed) => assert_eq!(parsed, v, "{s}"),
                other => panic!("expected number for {s}, got {other:?}"),
            }
        }
    }

    #[test]
    fn parser_accepts_a_full_document() {
        let v = parse(r#" {"a":[1,2.5,-3e2,true,null],"b":"x\n\u0041","c":{"d":false}} "#).unwrap();
        assert_eq!(
            v.get("a").unwrap(),
            &JsonValue::Arr(vec![
                JsonValue::Uint(1),
                JsonValue::Num(2.5),
                JsonValue::Num(-300.0),
                JsonValue::Bool(true),
                JsonValue::Null,
            ])
        );
        assert_eq!(v.get("b").unwrap().as_str(), Some("x\nA"));
        assert_eq!(v.get("c").unwrap().get("d").unwrap().as_bool(), Some(false));
    }

    #[test]
    fn parser_rejects_non_finite_numbers() {
        // Bare NaN/Infinity tokens are not JSON; overflowing exponents
        // would round to infinity. All must fail instead of producing
        // non-finite floats (this was a panic path for adversarial
        // traces before the strict parser existed).
        for bad in [
            "NaN",
            "Infinity",
            "-Infinity",
            "inf",
            "1e999",
            "-1e999",
            "nan",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should be rejected");
        }
        for bad in [r#"{"t":NaN}"#, r#"{"t":1e999}"#, "[inf]"] {
            assert!(parse(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn parser_rejects_malformed_grammar() {
        for bad in [
            "",
            "{",
            "[1,",
            "01",
            ".5",
            "1.",
            "1e",
            "+1",
            "tru",
            "\"unterminated",
            "{\"a\":1,}",
            "[1 2]",
            "{'a':1}",
            "1 2",
            "\"\\q\"",
            "\"\x01\"",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn parser_reports_error_offsets() {
        let err = parse(r#"{"a": nope}"#).unwrap_err();
        assert_eq!(err.offset, 6, "{err}");
        assert!(err.to_string().contains("byte 6"), "{err}");
    }

    #[test]
    fn parser_handles_unicode_and_surrogate_pairs() {
        assert_eq!(
            parse(r#""\ud83d\ude00 π""#).unwrap().as_str(),
            Some("\u{1F600} π")
        );
        assert!(parse(r#""\ud83d""#).is_err(), "unpaired surrogate");
    }

    #[test]
    fn u64_accessor_is_strict() {
        assert_eq!(parse("7").unwrap().as_u64(), Some(7));
        assert_eq!(parse("7.5").unwrap().as_u64(), None);
        assert_eq!(parse("-1").unwrap().as_u64(), None);
    }
}
