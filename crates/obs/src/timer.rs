//! Scoped wall-clock timers.

use crate::registry::Histogram;
use std::sync::Arc;
use std::time::Instant;

/// A simple wall-clock stopwatch.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Default for Stopwatch {
    fn default() -> Self {
        Self::start()
    }
}

impl Stopwatch {
    /// Start timing now.
    pub fn start() -> Self {
        Self {
            start: Instant::now(),
        }
    }

    /// Elapsed milliseconds (fractional).
    pub fn elapsed_ms(&self) -> f64 {
        self.start.elapsed().as_secs_f64() * 1e3
    }

    /// Elapsed microseconds, saturating into `u64`.
    pub fn elapsed_us(&self) -> u64 {
        let us = self.start.elapsed().as_secs_f64() * 1e6;
        if us >= u64::MAX as f64 {
            u64::MAX
        } else {
            us as u64
        }
    }
}

/// Records the wall-clock duration of a scope into a histogram (in
/// microseconds) when dropped.
#[derive(Debug)]
pub struct ScopedTimer {
    sink: Arc<Histogram>,
    watch: Stopwatch,
}

impl ScopedTimer {
    /// Start timing; the elapsed microseconds are recorded into `sink`
    /// on drop.
    pub fn new(sink: Arc<Histogram>) -> Self {
        Self {
            sink,
            watch: Stopwatch::start(),
        }
    }
}

impl Drop for ScopedTimer {
    fn drop(&mut self) {
        self.sink.record(self.watch.elapsed_us());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_moves_forward() {
        let w = Stopwatch::start();
        std::hint::black_box((0..1000).sum::<u64>());
        assert!(w.elapsed_ms() >= 0.0);
        assert!(w.elapsed_us() < 60_000_000, "test took over a minute?");
    }

    #[test]
    fn scoped_timer_records_on_drop() {
        let h = Arc::new(Histogram::default());
        {
            let _t = ScopedTimer::new(Arc::clone(&h));
        }
        assert_eq!(h.count(), 1);
    }
}
