//! Concurrency property test for the sharded telemetry pipeline: N
//! threads hammering a [`ShardedRecorder`] on pinned seeds must lose
//! no events, preserve every shard's emission order through the
//! merge, and serialize to the bit-for-bit identical event multiset a
//! locked (`Mutex`-guarded) recorder produces from the same streams.
//!
//! A concurrent drainer runs while the writers hammer, so the
//! incremental [`ShardedRecorder::drain`] path is exercised under
//! contention, not just the final [`ShardedRecorder::finish`].

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use loadsteal_obs::{
    CollectingRecorder, Event, Recorder, ShardSink, ShardedRecorder, SimEventKind,
};

const THREADS: usize = 8;
const EVENTS_PER_THREAD: usize = 10_000;

/// splitmix64 — the pinned-seed entropy source for the streams.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The deterministic stream thread `shard` emits for `seed`: a mix of
/// timestamped Sim events (with repeated-timestamp runs to exercise
/// tiebreaks), Heartbeats, and timestampless ReplicateDone events
/// (which must inherit their shard position in the merge). Every
/// event encodes `shard` so the merged stream can be split back.
fn stream(seed: u64, shard: usize) -> Vec<Event> {
    let mut rng = seed ^ (shard as u64).wrapping_mul(0xA5A5_A5A5_A5A5_A5A5);
    let mut t = 0.0_f64;
    (0..EVENTS_PER_THREAD)
        .map(|i| {
            let r = splitmix64(&mut rng);
            // Hold t constant ~25% of the time so equal-timestamp
            // tiebreak ordering is exercised.
            if r % 4 != 0 {
                t += (r >> 32) as f64 / 1e12 + 1e-9;
            }
            match r % 10 {
                0..=6 => Event::Sim {
                    kind: match r % 5 {
                        0 => SimEventKind::Arrival,
                        1 => SimEventKind::Completion,
                        2 => SimEventKind::StealAttempt,
                        3 => SimEventKind::StealSuccess,
                        _ => SimEventKind::Migration,
                    },
                    t,
                    proc: shard as u32,
                    src: if r % 5 == 4 { Some(shard as u32) } else { None },
                    count: i as u32 + 1,
                },
                7 | 8 => Event::Heartbeat {
                    t,
                    events: i as u64,
                    tasks_in_system: shard as u64,
                },
                _ => Event::ReplicateDone {
                    seed: shard as u64,
                    wall_ms: i as f64,
                    events: r >> 40,
                    events_per_sec: 1.0,
                },
            }
        })
        .collect()
}

/// Which shard an event from [`stream`] came from.
fn shard_of(ev: &Event) -> usize {
    match ev {
        Event::Sim { proc, .. } => *proc as usize,
        Event::Heartbeat {
            tasks_in_system, ..
        } => *tasks_in_system as usize,
        Event::ReplicateDone { seed, .. } => *seed as usize,
        other => panic!("stream never emits {other:?}"),
    }
}

/// Hammer `record` from THREADS threads with the pinned streams.
fn hammer(seed: u64, record: impl Fn(usize, &Event) + Sync) {
    std::thread::scope(|scope| {
        for shard in 0..THREADS {
            let record = &record;
            scope.spawn(move || {
                for ev in stream(seed, shard) {
                    record(shard, &ev);
                }
            });
        }
    });
}

fn sorted_lines(events: &[Event]) -> Vec<String> {
    let mut lines: Vec<String> = events.iter().map(Event::to_json_line).collect();
    lines.sort_unstable();
    lines
}

#[test]
fn hammered_sharded_recorder_matches_locked_recorder_bit_for_bit() {
    for seed in [1u64, 42, 0xDEAD_BEEF] {
        // Sharded path, with a concurrent drainer racing the writers.
        let sharded = ShardedRecorder::with_shards(CollectingRecorder::new(), THREADS);
        let stop = AtomicBool::new(false);
        std::thread::scope(|scope| {
            let sink = &sharded;
            let stop = &stop;
            scope.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    sink.drain();
                    std::thread::yield_now();
                }
            });
            hammer(seed, |shard, ev| sink.record(shard, ev));
            stop.store(true, Ordering::Relaxed);
        });
        let expected = (THREADS * EVENTS_PER_THREAD) as u64;
        assert_eq!(sharded.recorded(), expected, "seed {seed}: events lost");
        let merged = sharded.finish().into_events();
        assert_eq!(
            merged.len() as u64,
            expected,
            "seed {seed}: merge lost events"
        );

        // Locked path: same streams through a mutex-guarded recorder.
        let locked = Mutex::new(CollectingRecorder::new());
        hammer(seed, |_, ev| locked.lock().unwrap().record(ev));
        let interleaved = locked.into_inner().unwrap().into_events();

        assert_eq!(
            sorted_lines(&merged),
            sorted_lines(&interleaved),
            "seed {seed}: serialized multisets differ"
        );

        // Per-shard order: splitting the merged stream by origin must
        // reproduce each thread's emission sequence exactly.
        let mut by_shard: Vec<Vec<Event>> = vec![Vec::new(); THREADS];
        for ev in &merged {
            by_shard[shard_of(ev)].push(*ev);
        }
        for (shard, got) in by_shard.iter().enumerate() {
            let want = stream(seed, shard);
            assert_eq!(got.len(), want.len(), "seed {seed}: shard {shard} count");
            if let Some(i) = (0..want.len()).find(|&i| got[i] != want[i]) {
                panic!(
                    "seed {seed}: shard {shard} order diverges at index {i}:\n  got  {:?}\n  want {:?}\n  (next got  {:?})\n  (next want {:?})",
                    got[i],
                    want[i],
                    got.get(i + 1),
                    want.get(i + 1),
                );
            }
        }
    }
}
