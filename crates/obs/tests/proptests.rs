//! Property tests for the hand-rolled JSON layer: everything the
//! writer emits must parse back, bit-for-bit where the format allows.

use loadsteal_obs::json::{parse, JsonBuf, JsonValue};
use loadsteal_obs::{Event, SimEventKind};
use proptest::prelude::*;

/// Map arbitrary bits to a finite f64 (the writer never receives
/// non-finite values from instrumented code paths under test here; the
/// non-finite rendering is covered separately below).
fn finite(bits: u64) -> f64 {
    let v = f64::from_bits(bits);
    if v.is_finite() {
        v
    } else {
        // Fall back to a value derived from the same entropy.
        (bits >> 12) as f64 / 1e3
    }
}

/// Build a string from entropy over an alphabet that exercises every
/// escaping path: quotes, backslashes, control characters, multi-byte
/// UTF-8, and astral-plane characters (surrogate pairs in `\u` form).
fn tricky_string(seed: u64, len: usize) -> String {
    const ALPHABET: &[char] = &[
        'a',
        'Z',
        '0',
        ' ',
        '"',
        '\\',
        '/',
        '\n',
        '\r',
        '\t',
        '\u{0}',
        '\u{1f}',
        'é',
        'λ',
        '中',
        '😀',
        '\u{10FFFF}',
    ];
    let mut s = seed;
    (0..len)
        .map(|_| {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            ALPHABET[(s >> 33) as usize % ALPHABET.len()]
        })
        .collect()
}

fn sim_kind(tag: u8) -> SimEventKind {
    match tag % 5 {
        0 => SimEventKind::Arrival,
        1 => SimEventKind::Completion,
        2 => SimEventKind::StealAttempt,
        3 => SimEventKind::StealSuccess,
        _ => SimEventKind::Migration,
    }
}

fn get_f64(doc: &JsonValue, key: &str) -> f64 {
    doc.get(key)
        .unwrap_or_else(|| panic!("missing key {key}"))
        .as_f64()
        .unwrap_or_else(|| panic!("{key} is not a number"))
}

fn get_u64(doc: &JsonValue, key: &str) -> u64 {
    doc.get(key)
        .unwrap_or_else(|| panic!("missing key {key}"))
        .as_u64()
        .unwrap_or_else(|| panic!("{key} is not a u64"))
}

proptest! {
    #[test]
    fn finite_f64_round_trips_exactly(bits in any::<u64>()) {
        let v = finite(bits);
        let mut j = JsonBuf::new();
        j.begin_obj().field_f64("x", v);
        j.end_obj();
        let doc = parse(&j.finish()).expect("writer output must parse");
        let got = doc.get("x").unwrap().as_f64().unwrap();
        // Shortest-roundtrip float formatting is exact, including -0.0.
        prop_assert_eq!(got.to_bits(), v.to_bits());
    }

    #[test]
    fn u64_round_trips_exactly(v in any::<u64>()) {
        let mut j = JsonBuf::new();
        j.begin_obj().field_u64("n", v);
        j.end_obj();
        let doc = parse(&j.finish()).expect("writer output must parse");
        prop_assert_eq!(doc.get("n").unwrap().as_u64(), Some(v));
    }

    #[test]
    fn strings_round_trip_through_escaping(seed in any::<u64>(), len in 0usize..40) {
        let s = tricky_string(seed, len);
        let mut j = JsonBuf::new();
        j.begin_obj().field_str("s", &s);
        j.end_obj();
        let text = j.finish();
        let doc = parse(&text).expect("escaped string must parse");
        prop_assert_eq!(doc.get("s").unwrap().as_str(), Some(s.as_str()));
    }

    #[test]
    fn non_finite_floats_render_as_null_and_stay_parseable(tag in 0u8..3) {
        let v = match tag {
            0 => f64::NAN,
            1 => f64::INFINITY,
            _ => f64::NEG_INFINITY,
        };
        let mut j = JsonBuf::new();
        j.begin_obj().field_f64("x", v);
        j.end_obj();
        let doc = parse(&j.finish()).expect("null rendering must parse");
        prop_assert!(matches!(doc.get("x"), Some(JsonValue::Null)));
    }

    #[test]
    fn sim_event_lines_round_trip(
        tag in any::<u8>(),
        t in 0.0f64..1e9,
        procs in (0u32..4096, 0u32..4096),
        count in 1u32..100,
        with_src in any::<bool>(),
    ) {
        let kind = sim_kind(tag);
        let src = (kind == SimEventKind::Migration && with_src).then_some(procs.1);
        let ev = Event::Sim { kind, t, proc: procs.0, src, count };
        let doc = parse(&ev.to_json_line()).expect("event line must parse");
        prop_assert_eq!(doc.get("ev").unwrap().as_str(), Some(kind.name()));
        prop_assert_eq!(get_f64(&doc, "t").to_bits(), t.to_bits());
        prop_assert_eq!(get_u64(&doc, "proc"), procs.0 as u64);
        match src {
            Some(s) => prop_assert_eq!(get_u64(&doc, "src"), s as u64),
            None => prop_assert!(doc.get("src").is_none()),
        }
        if count != 1 {
            prop_assert_eq!(get_u64(&doc, "count"), count as u64);
        } else {
            prop_assert!(doc.get("count").is_none());
        }
    }

    #[test]
    fn solver_and_lifecycle_event_lines_round_trip(
        bits in (any::<u64>(), any::<u64>(), any::<u64>()),
        counts in (any::<u32>(), any::<u32>(), any::<u64>()),
        flags in (any::<bool>(), any::<bool>()),
        which in 0u8..4,
    ) {
        let (b0, b1, b2) = bits;
        let (c0, c1, c2) = counts;
        let ev = match which {
            0 => Event::SolverStep {
                accepted: flags.0,
                t: finite(b0),
                h: finite(b1),
                err_norm: finite(b2),
            },
            1 => Event::SolverDone {
                accepted: c0 as u64,
                rejected: c1 as u64,
                min_h: finite(b0),
                max_h: finite(b1),
                max_reject_streak: c2 % 1000,
                converged: flags.1,
                residual: finite(b2),
            },
            2 => Event::Heartbeat {
                t: finite(b0),
                events: c2,
                tasks_in_system: c0 as u64,
            },
            _ => Event::ReplicateDone {
                seed: c2,
                wall_ms: finite(b0),
                events: c1 as u64,
                events_per_sec: finite(b1),
            },
        };
        let line = ev.to_json_line();
        let doc = parse(&line).expect("event line must parse");
        prop_assert_eq!(doc.get("ev").unwrap().as_str(), Some(ev.name()));
        match ev {
            Event::SolverStep { accepted, t, h, err_norm } => {
                prop_assert_eq!(doc.get("accepted").unwrap().as_bool(), Some(accepted));
                prop_assert_eq!(get_f64(&doc, "t").to_bits(), t.to_bits());
                prop_assert_eq!(get_f64(&doc, "h").to_bits(), h.to_bits());
                prop_assert_eq!(get_f64(&doc, "err_norm").to_bits(), err_norm.to_bits());
            }
            Event::SolverDone { accepted, rejected, max_reject_streak, converged, .. } => {
                prop_assert_eq!(get_u64(&doc, "accepted"), accepted);
                prop_assert_eq!(get_u64(&doc, "rejected"), rejected);
                prop_assert_eq!(get_u64(&doc, "max_reject_streak"), max_reject_streak);
                prop_assert_eq!(doc.get("converged").unwrap().as_bool(), Some(converged));
            }
            Event::Heartbeat { t, events, tasks_in_system } => {
                prop_assert_eq!(get_f64(&doc, "t").to_bits(), t.to_bits());
                prop_assert_eq!(get_u64(&doc, "events"), events);
                prop_assert_eq!(get_u64(&doc, "tasks_in_system"), tasks_in_system);
            }
            Event::ReplicateDone { seed, wall_ms, events, .. } => {
                prop_assert_eq!(get_u64(&doc, "seed"), seed);
                prop_assert_eq!(get_f64(&doc, "wall_ms").to_bits(), wall_ms.to_bits());
                prop_assert_eq!(get_u64(&doc, "events"), events);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn nested_documents_round_trip(
        n in 0u64..1000,
        g in -1e6f64..1e6,
        seed in any::<u64>(),
    ) {
        let s = tricky_string(seed, 8);
        let mut j = JsonBuf::new();
        j.begin_obj();
        j.key("meta").begin_obj().field_str("name", &s).field_u64("n", n);
        j.end_obj();
        j.key("values").begin_arr();
        j.f64_val(g).u64_val(n).str_val(&s);
        j.end_arr();
        j.end_obj();
        let doc = parse(&j.finish()).expect("nested doc must parse");
        let meta = doc.get("meta").unwrap();
        prop_assert_eq!(meta.get("name").unwrap().as_str(), Some(s.as_str()));
        prop_assert_eq!(meta.get("n").unwrap().as_u64(), Some(n));
        match doc.get("values") {
            Some(JsonValue::Arr(xs)) => {
                prop_assert_eq!(xs.len(), 3);
                prop_assert_eq!(xs[0].as_f64().unwrap().to_bits(), g.to_bits());
                prop_assert_eq!(xs[1].as_u64(), Some(n));
                prop_assert_eq!(xs[2].as_str(), Some(s.as_str()));
            }
            other => panic!("values is not an array: {other:?}"),
        }
    }
}
