//! Property-based tests for the numeric substrate.

use proptest::prelude::*;

use loadsteal_ode::linalg::DenseMatrix;
use loadsteal_ode::{
    brent, newton_solve, AdaptiveOptions, DormandPrince45, NewtonOptions, OdeSystem,
};

/// A diagonally dominant random matrix is well conditioned; LU must
/// solve it to tight residuals.
fn dominant_matrix(n: usize, entries: Vec<f64>) -> DenseMatrix {
    let mut a = DenseMatrix::zeros(n);
    for i in 0..n {
        let mut row_sum = 0.0;
        for j in 0..n {
            let v = entries[i * n + j];
            a[(i, j)] = v;
            row_sum += v.abs();
        }
        a[(i, i)] += row_sum + 1.0;
    }
    a
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lu_solves_diagonally_dominant_systems(
        n in 1usize..20,
        seed in any::<u64>(),
    ) {
        let mut state = seed | 1;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        };
        let entries: Vec<f64> = (0..n * n).map(|_| next()).collect();
        let b: Vec<f64> = (0..n).map(|_| next()).collect();
        let a = dominant_matrix(n, entries);
        let a2 = a.clone();
        let x = a.lu().unwrap().solve(&b);
        let ax = a2.mul_vec(&x);
        for (l, r) in ax.iter().zip(&b) {
            prop_assert!((l - r).abs() < 1e-9, "residual {}", (l - r).abs());
        }
    }

    #[test]
    fn brent_finds_roots_of_shifted_cubics(shift in -8.0f64..8.0) {
        // f(x) = x^3 − shift is monotone with a single real root.
        let f = |x: f64| x * x * x - shift;
        let root = brent(f, -3.0, 3.0, 1e-13).unwrap();
        prop_assert!(f(root).abs() < 1e-9, "f({root}) = {}", f(root));
    }

    #[test]
    fn newton_inverts_smooth_monotone_maps(target in 0.1f64..10.0) {
        // Solve exp(x) = target.
        let mut x = vec![0.0];
        newton_solve(
            |v, out| out[0] = v[0].exp() - target,
            &mut x,
            &NewtonOptions::default(),
        )
        .unwrap();
        prop_assert!((x[0] - target.ln()).abs() < 1e-9);
    }

    #[test]
    fn dp45_matches_exact_linear_decay(
        rate in 0.01f64..5.0,
        horizon in 0.1f64..10.0,
        y0 in 0.1f64..10.0,
    ) {
        struct Decay(f64);
        impl OdeSystem for Decay {
            fn dim(&self) -> usize { 1 }
            fn deriv(&self, _t: f64, y: &[f64], dy: &mut [f64]) { dy[0] = -self.0 * y[0]; }
        }
        let mut y = vec![y0];
        let mut dp = DormandPrince45::new(AdaptiveOptions::default());
        dp.integrate(&Decay(rate), 0.0, horizon, &mut y).unwrap();
        let exact = y0 * (-rate * horizon).exp();
        prop_assert!((y[0] - exact).abs() < 1e-6 * y0.max(1.0),
            "got {}, exact {exact}", y[0]);
    }

    #[test]
    fn dp45_is_exact_on_quadratic_polynomials(a in -2.0f64..2.0, b in -2.0f64..2.0) {
        // y' = a t + b integrates exactly (order ≥ 2 method).
        struct Poly(f64, f64);
        impl OdeSystem for Poly {
            fn dim(&self) -> usize { 1 }
            fn deriv(&self, t: f64, _y: &[f64], dy: &mut [f64]) { dy[0] = self.0 * t + self.1; }
        }
        let mut y = vec![0.0];
        let mut dp = DormandPrince45::new(AdaptiveOptions::default());
        dp.integrate(&Poly(a, b), 0.0, 2.0, &mut y).unwrap();
        let exact = a * 2.0 + b * 2.0; // ∫₀² (a t + b) dt = 2a + 2b
        prop_assert!((y[0] - exact).abs() < 1e-9);
    }
}
