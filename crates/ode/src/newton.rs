//! Damped Newton iteration with a finite-difference Jacobian.
//!
//! Fixed points of a truncated mean-field family are roots of the
//! algebraic system `F(π) = 0`, where `F` is the right-hand side of the
//! ODEs. Integrating to steady state gets within `~1e-8`; this module
//! polishes that estimate to close to machine precision, which matters
//! when the performance metric is a long geometric sum of the tail.

use crate::linalg::DenseMatrix;
use crate::norms::max_abs;

/// Options for [`newton_solve`].
#[derive(Debug, Clone, Copy)]
pub struct NewtonOptions {
    /// Stop when `‖F(x)‖∞` falls below this.
    pub tol: f64,
    /// Maximum number of Newton iterations.
    pub max_iters: usize,
    /// Relative perturbation for the finite-difference Jacobian.
    pub fd_eps: f64,
    /// Smallest admissible damping factor in the backtracking line
    /// search before the iteration is declared stalled.
    pub min_damping: f64,
}

impl Default for NewtonOptions {
    fn default() -> Self {
        Self {
            tol: 1e-13,
            max_iters: 50,
            fd_eps: 1e-7,
            min_damping: 1.0 / 1024.0,
        }
    }
}

/// Convergence report from [`newton_solve`].
#[derive(Debug, Clone, Copy)]
pub struct NewtonReport {
    /// Iterations performed.
    pub iterations: usize,
    /// Final residual `‖F(x)‖∞`.
    pub residual: f64,
}

/// Failure modes of [`newton_solve`].
#[derive(Debug, Clone, PartialEq)]
pub enum NewtonError {
    /// The finite-difference Jacobian was singular.
    SingularJacobian {
        /// Iteration at which factorization failed.
        iteration: usize,
    },
    /// Backtracking could not reduce the residual.
    Stalled {
        /// Residual at the stall point.
        residual: f64,
    },
    /// Iteration budget exhausted.
    MaxIterations {
        /// Residual when the budget ran out.
        residual: f64,
    },
    /// `F` produced a non-finite value.
    NonFinite,
}

impl std::fmt::Display for NewtonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::SingularJacobian { iteration } => {
                write!(f, "singular Jacobian at Newton iteration {iteration}")
            }
            Self::Stalled { residual } => {
                write!(f, "Newton line search stalled at residual {residual}")
            }
            Self::MaxIterations { residual } => {
                write!(f, "Newton ran out of iterations at residual {residual}")
            }
            Self::NonFinite => write!(f, "residual function returned non-finite values"),
        }
    }
}

impl std::error::Error for NewtonError {}

/// Solve `F(x) = 0` starting from `x`, refining it in place.
///
/// ```
/// use loadsteal_ode::{newton_solve, NewtonOptions};
/// // Intersection of a circle and a line.
/// let mut x = vec![1.0, 0.5];
/// newton_solve(
///     |v, out| {
///         out[0] = v[0] * v[0] + v[1] * v[1] - 1.0;
///         out[1] = v[0] - v[1];
///     },
///     &mut x,
///     &NewtonOptions::default(),
/// )
/// .unwrap();
/// assert!((x[0] - 0.5f64.sqrt()).abs() < 1e-12);
/// ```
///
/// `f(x, out)` writes `F(x)` into `out` (same length as `x`). The
/// Jacobian is approximated column-by-column with forward differences,
/// factored with partially pivoted LU, and each Newton step is damped by
/// backtracking until the residual decreases (Armijo-free monotone
/// test — adequate because our fixed points are strongly attracting).
pub fn newton_solve(
    mut f: impl FnMut(&[f64], &mut [f64]),
    x: &mut [f64],
    opts: &NewtonOptions,
) -> Result<NewtonReport, NewtonError> {
    let n = x.len();
    let mut fx = vec![0.0; n];
    let mut fx_trial = vec![0.0; n];
    let mut x_trial = vec![0.0; n];
    let mut x_pert = vec![0.0; n];
    let mut f_pert = vec![0.0; n];

    f(x, &mut fx);
    if fx.iter().any(|v| !v.is_finite()) {
        return Err(NewtonError::NonFinite);
    }
    let mut res = max_abs(&fx);

    for iter in 0..opts.max_iters {
        if res < opts.tol {
            return Ok(NewtonReport {
                iterations: iter,
                residual: res,
            });
        }
        // Finite-difference Jacobian, one column per variable.
        let mut jac = DenseMatrix::zeros(n);
        for j in 0..n {
            x_pert.copy_from_slice(x);
            let h = opts.fd_eps * x[j].abs().max(1e-5);
            x_pert[j] += h;
            f(&x_pert, &mut f_pert);
            for i in 0..n {
                jac[(i, j)] = (f_pert[i] - fx[i]) / h;
            }
        }
        let lu = jac
            .lu()
            .map_err(|_| NewtonError::SingularJacobian { iteration: iter })?;
        // Newton direction: J dx = -F.
        let mut dx: Vec<f64> = fx.iter().map(|v| -v).collect();
        lu.solve_in_place(&mut dx);
        if dx.iter().any(|v| !v.is_finite()) {
            return Err(NewtonError::NonFinite);
        }

        // Backtracking damping.
        let mut lambda = 1.0;
        loop {
            for i in 0..n {
                x_trial[i] = x[i] + lambda * dx[i];
            }
            f(&x_trial, &mut fx_trial);
            let res_trial = max_abs(&fx_trial);
            if res_trial.is_finite() && res_trial < res {
                x.copy_from_slice(&x_trial);
                fx.copy_from_slice(&fx_trial);
                res = res_trial;
                break;
            }
            lambda *= 0.5;
            if lambda < opts.min_damping {
                // No progress possible along this direction.
                if res < opts.tol * 10.0 {
                    // Close enough: accept as converged-with-slack.
                    return Ok(NewtonReport {
                        iterations: iter + 1,
                        residual: res,
                    });
                }
                return Err(NewtonError::Stalled { residual: res });
            }
        }
    }
    if res < opts.tol {
        return Ok(NewtonReport {
            iterations: opts.max_iters,
            residual: res,
        });
    }
    Err(NewtonError::MaxIterations { residual: res })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_scalar_quadratic() {
        let mut x = vec![1.0];
        let report = newton_solve(
            |x, out| out[0] = x[0] * x[0] - 2.0,
            &mut x,
            &NewtonOptions::default(),
        )
        .unwrap();
        assert!((x[0] - 2.0_f64.sqrt()).abs() < 1e-12);
        assert!(report.iterations < 10);
    }

    #[test]
    fn solves_coupled_system() {
        // x^2 + y^2 = 4, x y = 1: intersect circle and hyperbola.
        let mut x = vec![2.0, 0.4];
        newton_solve(
            |v, out| {
                out[0] = v[0] * v[0] + v[1] * v[1] - 4.0;
                out[1] = v[0] * v[1] - 1.0;
            },
            &mut x,
            &NewtonOptions::default(),
        )
        .unwrap();
        assert!((x[0] * x[0] + x[1] * x[1] - 4.0).abs() < 1e-11);
        assert!((x[0] * x[1] - 1.0).abs() < 1e-11);
    }

    #[test]
    fn converged_start_returns_immediately() {
        let mut x = vec![2.0_f64.sqrt()];
        let report = newton_solve(
            |x, out| out[0] = x[0] * x[0] - 2.0,
            &mut x,
            &NewtonOptions::default(),
        )
        .unwrap();
        assert_eq!(report.iterations, 0);
    }

    #[test]
    fn damping_rescues_overshooting_steps() {
        // atan has tiny derivatives far out; undamped Newton diverges
        // from |x0| > ~1.39.
        let mut x = vec![3.0];
        newton_solve(
            |x, out| out[0] = x[0].atan(),
            &mut x,
            &NewtonOptions {
                max_iters: 200,
                ..NewtonOptions::default()
            },
        )
        .unwrap();
        assert!(x[0].abs() < 1e-10);
    }

    #[test]
    fn singular_jacobian_is_reported() {
        // F(x, y) = (x + y, x + y): Jacobian rank 1 everywhere.
        let mut x = vec![1.0, 1.0];
        let err = newton_solve(
            |v, out| {
                out[0] = v[0] + v[1];
                out[1] = v[0] + v[1];
            },
            &mut x,
            &NewtonOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(err, NewtonError::SingularJacobian { .. }));
    }

    #[test]
    fn nonfinite_residual_is_reported() {
        let mut x = vec![-1.0];
        let err = newton_solve(
            |v, out| out[0] = v[0].sqrt(), // NaN for negative input
            &mut x,
            &NewtonOptions::default(),
        )
        .unwrap_err();
        assert_eq!(err, NewtonError::NonFinite);
    }
}
