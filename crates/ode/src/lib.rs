//! ODE integration and nonlinear-solver substrate for `loadsteal`.
//!
//! The mean-field method of Mitzenmacher (SPAA 1998) represents a work
//! stealing system with `n → ∞` processors by a countable family of
//! differential equations over the tail measure
//! `s_i(t) = fraction of processors with at least i tasks`. Working with
//! those families requires three numerical tools, all provided here:
//!
//! 1. **Initial-value integration** ([`solver`]): fixed-step
//!    [`solver::Euler`] and [`solver::Rk4`], and the adaptive
//!    Dormand–Prince 5(4) pair [`solver::DormandPrince45`] with a PI step
//!    controller. All integrators drive any type implementing
//!    [`OdeSystem`] and support trajectory observers and steady-state
//!    detection ([`solver::SteadyStateOptions`]).
//! 2. **Dense linear algebra** ([`linalg`]): a column-major matrix with LU
//!    factorization (partial pivoting), enough to Newton-polish truncated
//!    fixed-point systems of a few hundred unknowns.
//! 3. **Root finding** ([`roots`], [`newton`]): scalar bisection and Brent
//!    iteration for the paper's closed-form fixed-point constants, and a
//!    damped finite-difference Newton method for the algebraic systems
//!    `F(π) = 0` that define fixed points without closed forms.
//!
//! The crate is deliberately self-contained (no external dependencies):
//! the Rust ODE ecosystem is thin, and the solvers needed here are small,
//! well-understood, and benefit from being tuned to the structure of the
//! truncated tail systems (cheap right-hand sides, moderate dimensions,
//! smooth non-stiff decay towards an attracting fixed point).
//!
//! # Example
//!
//! Integrate exponential decay `y' = -y` with the adaptive solver and
//! compare against the exact solution:
//!
//! ```
//! use loadsteal_ode::{OdeSystem, solver::{DormandPrince45, AdaptiveOptions}};
//!
//! struct Decay;
//! impl OdeSystem for Decay {
//!     fn dim(&self) -> usize { 1 }
//!     fn deriv(&self, _t: f64, y: &[f64], dy: &mut [f64]) { dy[0] = -y[0]; }
//! }
//!
//! let mut y = vec![1.0];
//! let mut dp = DormandPrince45::new(AdaptiveOptions::default());
//! dp.integrate(&Decay, 0.0, 5.0, &mut y).unwrap();
//! assert!((y[0] - (-5.0f64).exp()).abs() < 1e-8);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod linalg;
pub mod newton;
pub mod norms;
pub mod roots;
pub mod solver;
mod system;

pub use newton::{newton_solve, NewtonError, NewtonOptions, NewtonReport};
pub use roots::{bisect, brent, RootError};
pub use solver::{
    AdaptiveOptions, Control, DormandPrince45, Euler, IntegrationError, Rk4, SteadyReport,
    SteadyStateOptions, StepStats,
};
pub use system::{FnSystem, OdeSystem};
