//! Minimal dense linear algebra: a row-major matrix and LU factorization
//! with partial pivoting, sufficient for Newton polishing of truncated
//! fixed-point systems (dimensions up to a few hundred).

/// A dense, row-major `n × n` matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    n: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Create an `n × n` zero matrix.
    pub fn zeros(n: usize) -> Self {
        Self {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// Create the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Create a matrix from a row-major slice of length `n * n`.
    ///
    /// # Panics
    /// Panics if `data.len() != n * n`.
    pub fn from_rows(n: usize, data: &[f64]) -> Self {
        assert_eq!(data.len(), n * n, "DenseMatrix: wrong data length");
        Self {
            n,
            data: data.to_vec(),
        }
    }

    /// Matrix order `n`.
    pub fn order(&self) -> usize {
        self.n
    }

    /// Matrix–vector product `A x`.
    ///
    /// # Panics
    /// Panics if `x.len() != n`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n);
        let mut out = vec![0.0; self.n];
        for (i, oi) in out.iter_mut().enumerate() {
            let row = &self.data[i * self.n..(i + 1) * self.n];
            *oi = row.iter().zip(x).map(|(a, b)| a * b).sum();
        }
        out
    }

    /// Factor `A = P L U` in place. Fails on (numerical) singularity.
    pub fn lu(self) -> Result<Lu, SingularMatrix> {
        Lu::factor(self)
    }

    #[inline]
    fn idx(&self, r: usize, c: usize) -> usize {
        debug_assert!(r < self.n && c < self.n);
        r * self.n + c
    }
}

impl std::ops::Index<(usize, usize)> for DenseMatrix {
    type Output = f64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        &self.data[self.idx(r, c)]
    }
}

impl std::ops::IndexMut<(usize, usize)> for DenseMatrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        let i = self.idx(r, c);
        &mut self.data[i]
    }
}

/// Error returned when a matrix is singular to working precision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SingularMatrix {
    /// The elimination column at which no usable pivot was found.
    pub column: usize,
}

impl std::fmt::Display for SingularMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "matrix is singular at column {}", self.column)
    }
}

impl std::error::Error for SingularMatrix {}

/// An LU factorization with partial pivoting (`P A = L U`).
#[derive(Debug, Clone)]
pub struct Lu {
    lu: DenseMatrix,
    piv: Vec<usize>,
}

impl Lu {
    /// Factor the given matrix (consumed; the factors share its storage).
    pub fn factor(mut a: DenseMatrix) -> Result<Self, SingularMatrix> {
        let n = a.n;
        let mut piv: Vec<usize> = (0..n).collect();
        for col in 0..n {
            // Partial pivoting: find the largest entry in this column.
            let mut p = col;
            let mut best = a[(col, col)].abs();
            for r in (col + 1)..n {
                let v = a[(r, col)].abs();
                if v > best {
                    best = v;
                    p = r;
                }
            }
            if best <= 0.0 || !best.is_finite() {
                return Err(SingularMatrix { column: col });
            }
            if p != col {
                for c in 0..n {
                    let (i, j) = (a.idx(col, c), a.idx(p, c));
                    a.data.swap(i, j);
                }
                piv.swap(col, p);
            }
            let pivot = a[(col, col)];
            for r in (col + 1)..n {
                let m = a[(r, col)] / pivot;
                a[(r, col)] = m;
                if m != 0.0 {
                    // Row update: split the two disjoint row slices so the
                    // inner loop is bounds-check free.
                    let (upper, lower) = a.data.split_at_mut(r * n);
                    let pivot_row = &upper[col * n..col * n + n];
                    let row = &mut lower[..n];
                    for c in (col + 1)..n {
                        row[c] -= m * pivot_row[c];
                    }
                }
            }
        }
        Ok(Self { lu: a, piv })
    }

    /// Solve `A x = b`, overwriting `b` with `x`.
    ///
    /// # Panics
    /// Panics if `b.len()` differs from the matrix order.
    pub fn solve_in_place(&self, b: &mut [f64]) {
        let n = self.lu.n;
        assert_eq!(b.len(), n, "Lu::solve_in_place: wrong rhs length");
        // Apply the permutation.
        let permuted: Vec<f64> = self.piv.iter().map(|&p| b[p]).collect();
        b.copy_from_slice(&permuted);
        // Forward substitution with unit lower-triangular L.
        for i in 0..n {
            let row = &self.lu.data[i * n..i * n + i];
            let dot: f64 = row.iter().zip(&b[..i]).map(|(l, x)| l * x).sum();
            b[i] -= dot;
        }
        // Back substitution with U.
        for i in (0..n).rev() {
            let row = &self.lu.data[i * n + i..(i + 1) * n];
            let dot: f64 = row[1..].iter().zip(&b[i + 1..]).map(|(u, x)| u * x).sum();
            b[i] = (b[i] - dot) / row[0];
        }
    }

    /// Solve `A x = b`, returning `x`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let mut x = b.to_vec();
        self.solve_in_place(&mut x);
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_small_system() {
        // [2 1; 1 3] x = [3; 5]  =>  x = [0.8, 1.4]
        let a = DenseMatrix::from_rows(2, &[2.0, 1.0, 1.0, 3.0]);
        let lu = a.lu().unwrap();
        let x = lu.solve(&[3.0, 5.0]);
        assert!((x[0] - 0.8).abs() < 1e-12);
        assert!((x[1] - 1.4).abs() < 1e-12);
    }

    #[test]
    fn identity_solves_to_rhs() {
        let lu = DenseMatrix::identity(4).lu().unwrap();
        let b = [1.0, -2.0, 3.5, 0.0];
        let x = lu.solve(&b);
        assert_eq!(x, b.to_vec());
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        // Leading entry is zero; naive elimination would divide by 0.
        let a = DenseMatrix::from_rows(2, &[0.0, 1.0, 1.0, 0.0]);
        let lu = a.lu().unwrap();
        let x = lu.solve(&[2.0, 3.0]);
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_is_detected() {
        let a = DenseMatrix::from_rows(2, &[1.0, 2.0, 2.0, 4.0]);
        assert!(a.lu().is_err());
    }

    #[test]
    fn residual_is_small_for_random_like_matrix() {
        // Deterministic pseudo-random fill via a linear congruential
        // generator; checks A x ≈ b with a residual test.
        let n = 25;
        let mut seed: u64 = 0x9E3779B97F4A7C15;
        let mut next = || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((seed >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        };
        let mut a = DenseMatrix::zeros(n);
        for i in 0..n {
            for j in 0..n {
                a[(i, j)] = next();
            }
            a[(i, i)] += 4.0; // diagonally dominant => well conditioned
        }
        let b: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let a2 = a.clone();
        let x = a.lu().unwrap().solve(&b);
        let ax = a2.mul_vec(&x);
        let resid: f64 = ax
            .iter()
            .zip(&b)
            .map(|(p, q)| (p - q).abs())
            .fold(0.0, f64::max);
        assert!(resid < 1e-11, "residual {resid}");
    }

    #[test]
    fn mul_vec_matches_manual() {
        let a = DenseMatrix::from_rows(2, &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(a.mul_vec(&[1.0, 1.0]), vec![3.0, 7.0]);
    }
}
