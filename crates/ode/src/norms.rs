//! Small vector-norm helpers shared by the solvers.

/// Maximum absolute value (`ℓ∞` norm). Returns `0.0` for an empty slice.
#[inline]
pub fn max_abs(v: &[f64]) -> f64 {
    v.iter().fold(0.0_f64, |m, &x| m.max(x.abs()))
}

/// Sum of absolute values (`ℓ₁` norm).
#[inline]
pub fn l1(v: &[f64]) -> f64 {
    v.iter().map(|x| x.abs()).sum()
}

/// Euclidean (`ℓ₂`) norm.
#[inline]
pub fn l2(v: &[f64]) -> f64 {
    v.iter().map(|x| x * x).sum::<f64>().sqrt()
}

/// `ℓ₁` distance between two equal-length slices.
///
/// # Panics
/// Panics if the slices differ in length.
#[inline]
pub fn l1_distance(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "l1_distance: length mismatch");
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
}

/// Weighted RMS norm used for adaptive error control:
/// `sqrt(mean((e_i / (atol + rtol * |y_i|))^2))`.
#[inline]
pub fn error_norm(err: &[f64], y0: &[f64], y1: &[f64], atol: f64, rtol: f64) -> f64 {
    debug_assert_eq!(err.len(), y0.len());
    debug_assert_eq!(err.len(), y1.len());
    if err.is_empty() {
        return 0.0;
    }
    let sum: f64 = err
        .iter()
        .zip(y0.iter().zip(y1))
        .map(|(&e, (&a, &b))| {
            let scale = atol + rtol * a.abs().max(b.abs());
            let r = e / scale;
            r * r
        })
        .sum();
    (sum / err.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn norms_on_known_vectors() {
        let v = [3.0, -4.0];
        assert_eq!(max_abs(&v), 4.0);
        assert_eq!(l1(&v), 7.0);
        assert!((l2(&v) - 5.0).abs() < 1e-15);
    }

    #[test]
    fn empty_vectors_are_zero() {
        assert_eq!(max_abs(&[]), 0.0);
        assert_eq!(l1(&[]), 0.0);
        assert_eq!(l2(&[]), 0.0);
    }

    #[test]
    fn l1_distance_is_symmetric() {
        let a = [1.0, 2.0, 3.0];
        let b = [0.5, 2.5, 2.0];
        assert_eq!(l1_distance(&a, &b), l1_distance(&b, &a));
        assert!((l1_distance(&a, &b) - 2.0).abs() < 1e-15);
    }

    #[test]
    fn error_norm_scales_with_tolerance() {
        let err = [1e-6, 1e-6];
        let y = [1.0, 1.0];
        let tight = error_norm(&err, &y, &y, 1e-9, 1e-9);
        let loose = error_norm(&err, &y, &y, 1e-3, 1e-3);
        assert!(tight > loose);
    }
}
