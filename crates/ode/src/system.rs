/// A first-order autonomous-or-nonautonomous ODE system `y' = f(t, y)`.
///
/// Implementors describe the right-hand side only; integration state is
/// owned by the solvers in [`crate::solver`]. The dimension must stay
/// constant for the lifetime of an integration run (the mean-field models
/// in `loadsteal-core` re-truncate by constructing a fresh system).
pub trait OdeSystem {
    /// Number of state variables.
    fn dim(&self) -> usize;

    /// Write the derivative of `y` at time `t` into `dy`.
    ///
    /// `dy` has length [`Self::dim`] and arrives with unspecified
    /// contents; every entry must be written.
    fn deriv(&self, t: f64, y: &[f64], dy: &mut [f64]);

    /// Optional projection applied after every accepted step.
    ///
    /// Mean-field tail vectors must remain in `[0, 1]` and
    /// non-increasing; floating-point drift can violate this by tiny
    /// amounts near absorbing boundaries. The default is a no-op.
    fn project(&self, _y: &mut [f64]) {}
}

impl<T: OdeSystem + ?Sized> OdeSystem for &T {
    fn dim(&self) -> usize {
        (**self).dim()
    }
    fn deriv(&self, t: f64, y: &[f64], dy: &mut [f64]) {
        (**self).deriv(t, y, dy);
    }
    fn project(&self, y: &mut [f64]) {
        (**self).project(y);
    }
}

/// An [`OdeSystem`] defined by a closure; convenient in tests and small
/// experiments.
#[derive(Debug, Clone)]
pub struct FnSystem<F> {
    /// State dimension.
    pub dim: usize,
    /// Right-hand side `f(t, y, dy)`.
    pub f: F,
}

impl<F: Fn(f64, &[f64], &mut [f64])> OdeSystem for FnSystem<F> {
    fn dim(&self) -> usize {
        self.dim
    }
    fn deriv(&self, t: f64, y: &[f64], dy: &mut [f64]) {
        (self.f)(t, y, dy);
    }
}
