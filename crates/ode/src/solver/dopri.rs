//! Adaptive Dormand–Prince 5(4) integrator with FSAL and PI step control.

use crate::norms::{error_norm, max_abs};
use crate::system::OdeSystem;
use loadsteal_obs::span;
use loadsteal_obs::{Event, NullRecorder, Recorder};

use super::{Control, IntegrationError, SteadyReport, SteadyStateOptions, StepStats};

// Butcher tableau for the Dormand–Prince 5(4) pair (DOPRI5).
const C: [f64; 7] = [0.0, 1.0 / 5.0, 3.0 / 10.0, 4.0 / 5.0, 8.0 / 9.0, 1.0, 1.0];
const A2: [f64; 1] = [1.0 / 5.0];
const A3: [f64; 2] = [3.0 / 40.0, 9.0 / 40.0];
const A4: [f64; 3] = [44.0 / 45.0, -56.0 / 15.0, 32.0 / 9.0];
const A5: [f64; 4] = [
    19372.0 / 6561.0,
    -25360.0 / 2187.0,
    64448.0 / 6561.0,
    -212.0 / 729.0,
];
const A6: [f64; 5] = [
    9017.0 / 3168.0,
    -355.0 / 33.0,
    46732.0 / 5247.0,
    49.0 / 176.0,
    -5103.0 / 18656.0,
];
// Fifth-order solution weights (also the last stage's A row — FSAL).
const B5: [f64; 6] = [
    35.0 / 384.0,
    0.0,
    500.0 / 1113.0,
    125.0 / 192.0,
    -2187.0 / 6784.0,
    11.0 / 84.0,
];
// Error weights: b5 - b4 (embedded fourth-order solution).
const E: [f64; 7] = [
    71.0 / 57600.0,
    0.0,
    -71.0 / 16695.0,
    71.0 / 1920.0,
    -17253.0 / 339200.0,
    22.0 / 525.0,
    -1.0 / 40.0,
];

/// Tolerances and limits for [`DormandPrince45`].
#[derive(Debug, Clone, Copy)]
pub struct AdaptiveOptions {
    /// Absolute error tolerance per component.
    pub atol: f64,
    /// Relative error tolerance per component.
    pub rtol: f64,
    /// Initial step size.
    pub h_init: f64,
    /// Hard floor on the step size; going below it is an error.
    pub h_min: f64,
    /// Hard ceiling on the step size.
    pub h_max: f64,
    /// Budget of accepted + rejected steps per `integrate*` call.
    pub max_steps: u64,
}

impl Default for AdaptiveOptions {
    fn default() -> Self {
        Self {
            atol: 1e-12,
            rtol: 1e-9,
            h_init: 1e-3,
            h_min: 1e-13,
            h_max: f64::INFINITY,
            max_steps: 200_000_000,
        }
    }
}

/// The Dormand–Prince 5(4) embedded Runge–Kutta pair.
///
/// This is the workhorse integrator of the repository: it computes the
/// trajectories of every mean-field model and drives them to their fixed
/// points ([`Self::integrate_to_steady`]). It uses the first-same-as-last
/// property to spend six derivative evaluations per accepted step, and a
/// PI controller (Gustafsson) for smooth step-size adaptation.
#[derive(Debug, Clone)]
pub struct DormandPrince45 {
    opts: AdaptiveOptions,
    k: [Vec<f64>; 7],
    ytmp: Vec<f64>,
    ynew: Vec<f64>,
    err: Vec<f64>,
    /// Error estimate of the previous accepted step, for the PI term.
    err_old: f64,
    /// Step-control diagnostics of the most recent `integrate*` call.
    stats: StepStats,
}

impl DormandPrince45 {
    /// Create an integrator with the given options.
    ///
    /// # Panics
    /// Panics if tolerances or step bounds are non-positive or
    /// inconsistent.
    pub fn new(opts: AdaptiveOptions) -> Self {
        assert!(opts.atol > 0.0 && opts.rtol > 0.0, "tolerances must be > 0");
        assert!(
            opts.h_min > 0.0 && opts.h_init >= opts.h_min && opts.h_init <= opts.h_max,
            "inconsistent step bounds"
        );
        Self {
            opts,
            k: Default::default(),
            ytmp: Vec::new(),
            ynew: Vec::new(),
            err: Vec::new(),
            err_old: 1e-4,
            stats: StepStats::default(),
        }
    }

    /// The active options.
    pub fn options(&self) -> &AdaptiveOptions {
        &self.opts
    }

    /// Step-control diagnostics of the most recent `integrate*` call
    /// (valid even when the run returned an error).
    pub fn last_run_stats(&self) -> StepStats {
        self.stats
    }

    fn ensure_dim(&mut self, n: usize) {
        for k in &mut self.k {
            k.resize(n, 0.0);
        }
        self.ytmp.resize(n, 0.0);
        self.ynew.resize(n, 0.0);
        self.err.resize(n, 0.0);
    }

    /// Attempt one step of size `h` from `(t, y)`.
    ///
    /// On entry `k[0]` must hold `f(t, y)`. On success (`Some(err_norm)`
    /// with `err_norm <= 1`), `ynew` holds the fifth-order solution and
    /// `k[6]` holds `f(t + h, ynew)`.
    // Stage combinations index several k-slices in lockstep.
    #[allow(clippy::needless_range_loop)]
    fn try_step(&mut self, sys: &impl OdeSystem, t: f64, h: f64, y: &[f64]) -> f64 {
        let n = y.len();
        macro_rules! stage {
            ($idx:expr, $arow:expr) => {{
                let a: &[f64] = &$arow;
                for i in 0..n {
                    let mut acc = 0.0;
                    for (j, &aij) in a.iter().enumerate() {
                        acc += aij * self.k[j][i];
                    }
                    self.ytmp[i] = y[i] + h * acc;
                }
                let (done, rest) = self.k.split_at_mut($idx);
                let _ = done;
                sys.deriv(t + C[$idx] * h, &self.ytmp, &mut rest[0]);
            }};
        }
        stage!(1, A2);
        stage!(2, A3);
        stage!(3, A4);
        stage!(4, A5);
        stage!(5, A6);
        // Fifth-order solution (B5 row; stage 7 shares it — FSAL).
        for i in 0..n {
            let mut acc = 0.0;
            for (j, &bj) in B5.iter().enumerate() {
                acc += bj * self.k[j][i];
            }
            self.ynew[i] = y[i] + h * acc;
        }
        {
            let (done, rest) = self.k.split_at_mut(6);
            let _ = done;
            sys.deriv(t + h, &self.ynew, &mut rest[0]);
        }
        for i in 0..n {
            let mut acc = 0.0;
            for (j, &ej) in E.iter().enumerate() {
                acc += ej * self.k[j][i];
            }
            self.err[i] = h * acc;
        }
        error_norm(&self.err, y, &self.ynew, self.opts.atol, self.opts.rtol)
    }

    /// Integrate `y` from `t0` to `t1`.
    pub fn integrate(
        &mut self,
        sys: &impl OdeSystem,
        t0: f64,
        t1: f64,
        y: &mut [f64],
    ) -> Result<(), IntegrationError> {
        self.integrate_observed(sys, t0, t1, y, |_, _| Control::Continue)
            .map(|_| ())
    }

    /// [`Self::integrate`] with per-step events sent to `rec`.
    pub fn integrate_traced(
        &mut self,
        sys: &impl OdeSystem,
        t0: f64,
        t1: f64,
        y: &mut [f64],
        rec: &mut dyn Recorder,
    ) -> Result<(), IntegrationError> {
        self.drive(sys, t0, t1, y, 0.0, 0.0, |_, _| Control::Continue, rec)
            .map(|_| ())
    }

    /// Integrate `y` from `t0` to `t1`, invoking `observer` after every
    /// accepted step. Returns the time reached (< `t1` only if the
    /// observer stopped early).
    pub fn integrate_observed(
        &mut self,
        sys: &impl OdeSystem,
        t0: f64,
        t1: f64,
        y: &mut [f64],
        mut observer: impl FnMut(f64, &[f64]) -> Control,
    ) -> Result<f64, IntegrationError> {
        // `steady_tol = 0` disables steady-state stopping (residuals are
        // non-negative).
        let (t, _steps, _res) = self.drive(
            sys,
            t0,
            t1,
            y,
            0.0,
            0.0,
            |t, y| observer(t, y),
            &mut NullRecorder,
        )?;
        Ok(t)
    }

    /// Integrate from `t0` until `‖dy/dt‖∞ < opts.tol` (or `opts.t_max`).
    ///
    /// Starting from any state, the well-behaved mean-field systems flow
    /// to their fixed point; this is the numerical fixed-point primitive
    /// used throughout `loadsteal-core`.
    pub fn integrate_to_steady(
        &mut self,
        sys: &impl OdeSystem,
        t0: f64,
        y: &mut [f64],
        steady: &SteadyStateOptions,
    ) -> Result<SteadyReport, IntegrationError> {
        self.integrate_to_steady_traced(sys, t0, y, steady, &mut NullRecorder)
    }

    /// [`Self::integrate_to_steady`] with the convergence trace
    /// (per-step residuals and step control) sent to `rec`.
    pub fn integrate_to_steady_traced(
        &mut self,
        sys: &impl OdeSystem,
        t0: f64,
        y: &mut [f64],
        steady: &SteadyStateOptions,
        rec: &mut dyn Recorder,
    ) -> Result<SteadyReport, IntegrationError> {
        let (t, steps, residual) = self.drive(
            sys,
            t0,
            t0 + steady.t_max,
            y,
            steady.tol,
            t0 + steady.min_time,
            |_, _| Control::Continue,
            rec,
        )?;
        Ok(SteadyReport {
            t,
            residual,
            converged: residual < steady.tol,
            steps,
        })
    }

    /// Core adaptive loop plus end-of-run reporting: resets the run
    /// stats, integrates, and emits a `SolverDone` summary to `rec`.
    #[allow(clippy::too_many_arguments)]
    fn drive(
        &mut self,
        sys: &impl OdeSystem,
        t0: f64,
        t1: f64,
        y: &mut [f64],
        steady_tol: f64,
        steady_after: f64,
        observer: impl FnMut(f64, &[f64]) -> Control,
        rec: &mut dyn Recorder,
    ) -> Result<(f64, u64, f64), IntegrationError> {
        let _span = span::span("ode.integrate");
        self.stats = StepStats::default();
        let out = self.drive_inner(sys, t0, t1, y, steady_tol, steady_after, observer, rec);
        if rec.enabled() {
            let (converged, residual) = match &out {
                Ok((t, _, residual)) => {
                    let converged = if steady_tol > 0.0 {
                        *residual < steady_tol
                    } else {
                        *t >= t1
                    };
                    (converged, *residual)
                }
                Err(_) => (false, f64::NAN),
            };
            let s = self.stats;
            rec.record(&Event::SolverDone {
                accepted: s.accepted,
                rejected: s.rejected,
                min_h: s.min_h,
                max_h: s.max_h,
                max_reject_streak: s.max_reject_streak,
                converged,
                residual,
            });
        }
        out
    }

    /// The adaptive loop proper. Stops at `t1`, or when the derivative
    /// norm drops below `steady_tol` after `steady_after`, or when the
    /// observer requests it. Returns `(t, accepted_steps, residual)`.
    #[allow(clippy::too_many_arguments)]
    fn drive_inner(
        &mut self,
        sys: &impl OdeSystem,
        t0: f64,
        t1: f64,
        y: &mut [f64],
        steady_tol: f64,
        steady_after: f64,
        mut observer: impl FnMut(f64, &[f64]) -> Control,
        rec: &mut dyn Recorder,
    ) -> Result<(f64, u64, f64), IntegrationError> {
        let n = sys.dim();
        assert_eq!(y.len(), n, "state length must match system dimension");
        self.ensure_dim(n);
        if t1 <= t0 || n == 0 {
            sys.deriv(t0, y, &mut self.k[0]);
            return Ok((t0, 0, max_abs(&self.k[0])));
        }

        let mut t = t0;
        let mut h = self.opts.h_init.min(t1 - t0).min(self.opts.h_max);
        sys.deriv(t, y, &mut self.k[0]);
        let mut residual = max_abs(&self.k[0]);
        let mut accepted: u64 = 0;
        let mut nsteps: u64 = 0;
        // Sampled once: the disabled path must not pay per-step virtual
        // calls, only this local bool check.
        let tracing = rec.enabled();
        let mut reject_streak: u64 = 0;
        // PI controller exponents for a fifth-order method.
        const ALPHA: f64 = 0.7 / 5.0;
        const BETA: f64 = 0.4 / 5.0;
        const SAFETY: f64 = 0.9;

        loop {
            if t >= t1 {
                return Ok((t, accepted, residual));
            }
            nsteps += 1;
            if nsteps > self.opts.max_steps {
                return Err(IntegrationError::MaxStepsExceeded { t });
            }
            let h_eff = h.min(t1 - t);
            let err = {
                // Stage evaluations + embedded error estimate: the
                // solver's hot phase (6 derivative calls + FSAL).
                let _span = span::span("ode.step_attempt");
                self.try_step(sys, t, h_eff, y)
            };
            // Everything after the attempt — accept/reject decision,
            // PI controller, FSAL bookkeeping — is error control.
            let _ctl_span = span::span("ode.error_control");
            if tracing {
                rec.record(&Event::SolverStep {
                    accepted: err.is_finite() && err <= 1.0,
                    t,
                    h: h_eff,
                    err_norm: err,
                });
            }
            if !err.is_finite() {
                // Reject hard and shrink; if we're already at the floor,
                // the right-hand side itself is producing non-finite
                // values.
                self.stats.rejected += 1;
                reject_streak += 1;
                self.stats.max_reject_streak = self.stats.max_reject_streak.max(reject_streak);
                if h_eff <= self.opts.h_min * 2.0 {
                    return Err(IntegrationError::NonFinite { t });
                }
                h = (h * 0.1).max(self.opts.h_min);
                continue;
            }
            if err <= 1.0 {
                // Accept.
                t += h_eff;
                y.copy_from_slice(&self.ynew);
                sys.project(y);
                // FSAL: k[6] = f(t, ynew); projection may perturb y by
                // ~ulp which is irrelevant to the derivative estimate.
                self.k.swap(0, 6);
                accepted += 1;
                residual = max_abs(&self.k[0]);
                self.stats.accepted += 1;
                self.stats.min_h = if self.stats.min_h == 0.0 {
                    h_eff
                } else {
                    self.stats.min_h.min(h_eff)
                };
                self.stats.max_h = self.stats.max_h.max(h_eff);
                reject_streak = 0;
                if tracing && steady_tol > 0.0 {
                    rec.record(&Event::SolverSteady { t, residual });
                }
                let scale = SAFETY * err.max(1e-10).powf(-ALPHA) * self.err_old.powf(BETA);
                self.err_old = err.max(1e-10);
                h = (h_eff * scale.clamp(0.2, 6.0)).min(self.opts.h_max);
                if residual < steady_tol && t >= steady_after {
                    return Ok((t, accepted, residual));
                }
                if observer(t, y) == Control::Stop {
                    return Ok((t, accepted, residual));
                }
            } else {
                // Reject: classic controller (no PI memory on rejects).
                self.stats.rejected += 1;
                reject_streak += 1;
                self.stats.max_reject_streak = self.stats.max_reject_streak.max(reject_streak);
                let scale = (SAFETY * err.powf(-0.2)).clamp(0.1, 1.0);
                h = h_eff * scale;
                if h < self.opts.h_min {
                    return Err(IntegrationError::StepSizeUnderflow { t });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::FnSystem;

    fn opts() -> AdaptiveOptions {
        AdaptiveOptions::default()
    }

    #[test]
    fn decay_matches_exact_solution() {
        let sys = FnSystem {
            dim: 1,
            f: |_t, y: &[f64], dy: &mut [f64]| dy[0] = -y[0],
        };
        let mut y = vec![1.0];
        let mut dp = DormandPrince45::new(opts());
        dp.integrate(&sys, 0.0, 10.0, &mut y).unwrap();
        assert!((y[0] - (-10.0f64).exp()).abs() < 1e-10);
    }

    #[test]
    fn oscillator_conserves_energy() {
        let sys = FnSystem {
            dim: 2,
            f: |_t, y: &[f64], dy: &mut [f64]| {
                dy[0] = y[1];
                dy[1] = -y[0];
            },
        };
        let mut y = vec![1.0, 0.0];
        let mut dp = DormandPrince45::new(opts());
        dp.integrate(&sys, 0.0, 20.0 * std::f64::consts::PI, &mut y)
            .unwrap();
        let energy = y[0] * y[0] + y[1] * y[1];
        assert!((energy - 1.0).abs() < 1e-6, "energy drift: {energy}");
    }

    #[test]
    fn time_dependent_rhs_is_handled() {
        // y' = 2t  => y(t) = t^2.
        let sys = FnSystem {
            dim: 1,
            f: |t, _y: &[f64], dy: &mut [f64]| dy[0] = 2.0 * t,
        };
        let mut y = vec![0.0];
        let mut dp = DormandPrince45::new(opts());
        dp.integrate(&sys, 0.0, 3.0, &mut y).unwrap();
        assert!((y[0] - 9.0).abs() < 1e-9);
    }

    #[test]
    fn steady_state_detection_finds_fixed_point() {
        // Logistic: y' = y (1 - y); attracting fixed point at 1.
        let sys = FnSystem {
            dim: 1,
            f: |_t, y: &[f64], dy: &mut [f64]| dy[0] = y[0] * (1.0 - y[0]),
        };
        let mut y = vec![0.01];
        let mut dp = DormandPrince45::new(opts());
        let report = dp
            .integrate_to_steady(&sys, 0.0, &mut y, &SteadyStateOptions::default())
            .unwrap();
        assert!(report.converged, "residual {}", report.residual);
        assert!((y[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn steady_state_respects_t_max() {
        // Constant drift never becomes steady.
        let sys = FnSystem {
            dim: 1,
            f: |_t, _y: &[f64], dy: &mut [f64]| dy[0] = 1.0,
        };
        let mut y = vec![0.0];
        let mut dp = DormandPrince45::new(opts());
        let report = dp
            .integrate_to_steady(
                &sys,
                0.0,
                &mut y,
                &SteadyStateOptions {
                    tol: 1e-9,
                    t_max: 5.0,
                    min_time: 0.0,
                },
            )
            .unwrap();
        assert!(!report.converged);
        assert!((report.t - 5.0).abs() < 1e-9);
        assert!((y[0] - 5.0).abs() < 1e-9);
    }

    #[test]
    fn observer_stops_integration() {
        let sys = FnSystem {
            dim: 1,
            f: |_t, y: &[f64], dy: &mut [f64]| dy[0] = -y[0],
        };
        let mut y = vec![1.0];
        let mut dp = DormandPrince45::new(opts());
        let t = dp
            .integrate_observed(&sys, 0.0, 100.0, &mut y, |_t, y| {
                if y[0] < 0.5 {
                    Control::Stop
                } else {
                    Control::Continue
                }
            })
            .unwrap();
        assert!(t < 1.5);
    }

    #[test]
    fn tolerances_control_accuracy() {
        let sys = FnSystem {
            dim: 1,
            f: |_t, y: &[f64], dy: &mut [f64]| dy[0] = -y[0],
        };
        let exact = (-5.0f64).exp();
        let run = |rtol: f64| {
            let mut y = vec![1.0];
            let mut dp = DormandPrince45::new(AdaptiveOptions {
                rtol,
                atol: rtol * 1e-3,
                ..opts()
            });
            dp.integrate(&sys, 0.0, 5.0, &mut y).unwrap();
            (y[0] - exact).abs()
        };
        assert!(run(1e-10) < run(1e-4));
    }

    #[test]
    fn traced_run_emits_steps_and_summary() {
        use loadsteal_obs::{CountingRecorder, Recorder as _};
        let sys = FnSystem {
            dim: 1,
            f: |_t, y: &[f64], dy: &mut [f64]| dy[0] = -y[0],
        };
        let mut y = vec![1.0];
        let mut dp = DormandPrince45::new(opts());
        let mut rec = CountingRecorder::new();
        dp.integrate_traced(&sys, 0.0, 10.0, &mut y, &mut rec)
            .unwrap();
        let c = rec.counts();
        let stats = dp.last_run_stats();
        assert_eq!(c.solver_accepted, stats.accepted);
        assert_eq!(c.solver_rejected, stats.rejected);
        assert_eq!(c.solver_done, 1);
        assert!(stats.accepted > 0);
        assert!(stats.min_h > 0.0 && stats.min_h <= stats.max_h);
        assert!(!stats.stiffness_hint());
        assert!(rec.enabled());
    }

    #[test]
    fn steady_trace_records_convergence_residuals() {
        use loadsteal_obs::CountingRecorder;
        let sys = FnSystem {
            dim: 1,
            f: |_t, y: &[f64], dy: &mut [f64]| dy[0] = y[0] * (1.0 - y[0]),
        };
        let mut y = vec![0.01];
        let mut dp = DormandPrince45::new(opts());
        let mut rec = CountingRecorder::new();
        let report = dp
            .integrate_to_steady_traced(&sys, 0.0, &mut y, &SteadyStateOptions::default(), &mut rec)
            .unwrap();
        assert!(report.converged);
        let c = rec.counts();
        // One residual sample per accepted step, plus the summary.
        assert_eq!(c.solver_steady, c.solver_accepted);
        assert_eq!(c.solver_done, 1);
    }

    #[test]
    fn untraced_run_still_collects_stats() {
        let sys = FnSystem {
            dim: 1,
            f: |_t, y: &[f64], dy: &mut [f64]| dy[0] = -y[0],
        };
        let mut y = vec![1.0];
        let mut dp = DormandPrince45::new(opts());
        dp.integrate(&sys, 0.0, 10.0, &mut y).unwrap();
        let stats = dp.last_run_stats();
        assert!(stats.accepted > 0);
        assert!(stats.max_h >= stats.min_h);
    }

    #[test]
    fn empty_system_is_a_noop() {
        let sys = FnSystem {
            dim: 0,
            f: |_t, _y: &[f64], _dy: &mut [f64]| {},
        };
        let mut y: Vec<f64> = vec![];
        let mut dp = DormandPrince45::new(opts());
        dp.integrate(&sys, 0.0, 1.0, &mut y).unwrap();
    }
}
