//! Fixed-step explicit integrators: forward Euler and classic RK4.

use crate::system::OdeSystem;

use super::{Control, IntegrationError};

/// Forward Euler with a fixed step.
///
/// First-order accurate; used as a baseline in convergence tests and for
/// quick qualitative trajectory sketches. Prefer
/// [`super::DormandPrince45`] for anything quantitative.
#[derive(Debug, Clone)]
pub struct Euler {
    h: f64,
    dy: Vec<f64>,
}

impl Euler {
    /// Create an integrator with step size `h > 0`.
    ///
    /// # Panics
    /// Panics if `h` is not a positive finite number.
    pub fn new(h: f64) -> Self {
        assert!(h.is_finite() && h > 0.0, "Euler: step size must be > 0");
        Self { h, dy: Vec::new() }
    }

    /// The configured step size.
    pub fn step_size(&self) -> f64 {
        self.h
    }

    /// Advance `y` by one step from time `t`.
    pub fn step(&mut self, sys: &impl OdeSystem, t: f64, y: &mut [f64]) {
        self.dy.resize(sys.dim(), 0.0);
        sys.deriv(t, y, &mut self.dy);
        for (yi, di) in y.iter_mut().zip(&self.dy) {
            *yi += self.h * di;
        }
        sys.project(y);
    }

    /// Integrate from `t0` to `t1` (the final step is shortened to land
    /// exactly on `t1`).
    pub fn integrate(
        &mut self,
        sys: &impl OdeSystem,
        t0: f64,
        t1: f64,
        y: &mut [f64],
    ) -> Result<(), IntegrationError> {
        integrate_fixed(t0, t1, self.h, y, |t, y, h| {
            self.dy.resize(sys.dim(), 0.0);
            sys.deriv(t, y, &mut self.dy);
            for (yi, di) in y.iter_mut().zip(&self.dy) {
                *yi += h * di;
            }
            sys.project(y);
        })
    }
}

/// Classic fourth-order Runge–Kutta with a fixed step.
#[derive(Debug, Clone)]
pub struct Rk4 {
    h: f64,
    k1: Vec<f64>,
    k2: Vec<f64>,
    k3: Vec<f64>,
    k4: Vec<f64>,
    tmp: Vec<f64>,
}

impl Rk4 {
    /// Create an integrator with step size `h > 0`.
    ///
    /// # Panics
    /// Panics if `h` is not a positive finite number.
    pub fn new(h: f64) -> Self {
        assert!(h.is_finite() && h > 0.0, "Rk4: step size must be > 0");
        Self {
            h,
            k1: Vec::new(),
            k2: Vec::new(),
            k3: Vec::new(),
            k4: Vec::new(),
            tmp: Vec::new(),
        }
    }

    /// The configured step size.
    pub fn step_size(&self) -> f64 {
        self.h
    }

    fn ensure_dim(&mut self, n: usize) {
        for v in [
            &mut self.k1,
            &mut self.k2,
            &mut self.k3,
            &mut self.k4,
            &mut self.tmp,
        ] {
            v.resize(n, 0.0);
        }
    }

    /// Advance `y` by one step of size `h` from time `t`.
    // Stage loops index several scratch slices in lockstep; an iterator
    // chain would obscure the Butcher tableau.
    #[allow(clippy::needless_range_loop)]
    fn raw_step(&mut self, sys: &impl OdeSystem, t: f64, h: f64, y: &mut [f64]) {
        let n = sys.dim();
        self.ensure_dim(n);
        sys.deriv(t, y, &mut self.k1);
        for i in 0..n {
            self.tmp[i] = y[i] + 0.5 * h * self.k1[i];
        }
        sys.deriv(t + 0.5 * h, &self.tmp, &mut self.k2);
        for i in 0..n {
            self.tmp[i] = y[i] + 0.5 * h * self.k2[i];
        }
        sys.deriv(t + 0.5 * h, &self.tmp, &mut self.k3);
        for i in 0..n {
            self.tmp[i] = y[i] + h * self.k3[i];
        }
        sys.deriv(t + h, &self.tmp, &mut self.k4);
        for i in 0..n {
            y[i] += h / 6.0 * (self.k1[i] + 2.0 * self.k2[i] + 2.0 * self.k3[i] + self.k4[i]);
        }
        sys.project(y);
    }

    /// Advance `y` by one configured-size step from time `t`.
    pub fn step(&mut self, sys: &impl OdeSystem, t: f64, y: &mut [f64]) {
        self.raw_step(sys, t, self.h, y);
    }

    /// Integrate from `t0` to `t1` (the final step is shortened to land
    /// exactly on `t1`).
    pub fn integrate(
        &mut self,
        sys: &impl OdeSystem,
        t0: f64,
        t1: f64,
        y: &mut [f64],
    ) -> Result<(), IntegrationError> {
        // `self` is borrowed inside the closure; split the borrow by
        // moving the step body here via a small state machine instead.
        let h = self.h;
        let mut t = t0;
        if t1 <= t0 {
            return Ok(());
        }
        loop {
            let remaining = t1 - t;
            if remaining <= 0.0 {
                return Ok(());
            }
            let step = h.min(remaining);
            self.raw_step(sys, t, step, y);
            if y.iter().any(|v| !v.is_finite()) {
                return Err(IntegrationError::NonFinite { t });
            }
            t += step;
            if step >= remaining {
                return Ok(());
            }
        }
    }

    /// Integrate while reporting every accepted state to `observer`.
    /// Returns the time reached.
    pub fn integrate_observed(
        &mut self,
        sys: &impl OdeSystem,
        t0: f64,
        t1: f64,
        y: &mut [f64],
        mut observer: impl FnMut(f64, &[f64]) -> Control,
    ) -> Result<f64, IntegrationError> {
        let h = self.h;
        let mut t = t0;
        while t < t1 {
            let step = h.min(t1 - t);
            self.raw_step(sys, t, step, y);
            if y.iter().any(|v| !v.is_finite()) {
                return Err(IntegrationError::NonFinite { t });
            }
            t += step;
            if observer(t, y) == Control::Stop {
                break;
            }
        }
        Ok(t)
    }
}

/// Shared fixed-step driver: repeatedly applies `step(t, y, h)` with the
/// final step shortened to land exactly on `t1`.
fn integrate_fixed(
    t0: f64,
    t1: f64,
    h: f64,
    y: &mut [f64],
    mut step: impl FnMut(f64, &mut [f64], f64),
) -> Result<(), IntegrationError> {
    let mut t = t0;
    while t < t1 {
        let dt = h.min(t1 - t);
        step(t, y, dt);
        if y.iter().any(|v| !v.is_finite()) {
            return Err(IntegrationError::NonFinite { t });
        }
        t += dt;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::FnSystem;

    fn decay() -> FnSystem<impl Fn(f64, &[f64], &mut [f64])> {
        FnSystem {
            dim: 1,
            f: |_t, y: &[f64], dy: &mut [f64]| dy[0] = -y[0],
        }
    }

    #[test]
    fn euler_converges_first_order() {
        let sys = decay();
        let exact = (-1.0f64).exp();
        let mut errs = Vec::new();
        for h in [1e-2, 1e-3] {
            let mut y = vec![1.0];
            Euler::new(h).integrate(&sys, 0.0, 1.0, &mut y).unwrap();
            errs.push((y[0] - exact).abs());
        }
        // Halving h by 10 should reduce the error by roughly 10.
        let ratio = errs[0] / errs[1];
        assert!(ratio > 5.0 && ratio < 20.0, "ratio = {ratio}");
    }

    #[test]
    fn rk4_converges_fourth_order() {
        let sys = decay();
        let exact = (-1.0f64).exp();
        let mut errs = Vec::new();
        for h in [1e-1, 5e-2] {
            let mut y = vec![1.0];
            Rk4::new(h).integrate(&sys, 0.0, 1.0, &mut y).unwrap();
            errs.push((y[0] - exact).abs());
        }
        let ratio = errs[0] / errs[1];
        assert!(ratio > 10.0 && ratio < 24.0, "ratio = {ratio}");
    }

    #[test]
    fn rk4_is_accurate_on_oscillator() {
        // y'' = -y as a 2-d system; energy should be conserved closely.
        let sys = FnSystem {
            dim: 2,
            f: |_t, y: &[f64], dy: &mut [f64]| {
                dy[0] = y[1];
                dy[1] = -y[0];
            },
        };
        let mut y = vec![1.0, 0.0];
        Rk4::new(1e-3)
            .integrate(&sys, 0.0, 2.0 * std::f64::consts::PI, &mut y)
            .unwrap();
        assert!((y[0] - 1.0).abs() < 1e-9);
        assert!(y[1].abs() < 1e-9);
    }

    #[test]
    fn integrate_handles_empty_span() {
        let sys = decay();
        let mut y = vec![1.0];
        Rk4::new(0.1).integrate(&sys, 1.0, 1.0, &mut y).unwrap();
        assert_eq!(y[0], 1.0);
    }

    #[test]
    fn observer_can_stop_early() {
        let sys = decay();
        let mut y = vec![1.0];
        let t = Rk4::new(0.01)
            .integrate_observed(&sys, 0.0, 10.0, &mut y, |_t, y| {
                if y[0] < 0.5 {
                    Control::Stop
                } else {
                    Control::Continue
                }
            })
            .unwrap();
        assert!(t < 1.0, "should stop near ln 2 ≈ 0.69, got {t}");
        assert!(y[0] <= 0.5);
    }

    #[test]
    fn nonfinite_derivative_is_reported() {
        let sys = FnSystem {
            dim: 1,
            f: |_t, y: &[f64], dy: &mut [f64]| dy[0] = y[0] * y[0],
        };
        // Blow-up of y' = y^2 from y(0)=1 happens at t=1.
        let mut y = vec![1.0];
        let res = Euler::new(0.05).integrate(&sys, 0.0, 5.0, &mut y);
        assert!(matches!(res, Err(IntegrationError::NonFinite { .. })));
    }

    #[test]
    #[should_panic(expected = "step size must be > 0")]
    fn zero_step_size_panics() {
        let _ = Rk4::new(0.0);
    }
}
