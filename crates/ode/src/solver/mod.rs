//! Initial-value integrators.
//!
//! Two fixed-step methods ([`Euler`], [`Rk4`]) for cheap trajectory
//! sketches and regression baselines, and the production integrator
//! [`DormandPrince45`] — an adaptive embedded Runge–Kutta 5(4) pair with
//! FSAL and a PI step-size controller.
//!
//! All integrators operate in place on a caller-owned state vector and
//! reuse internal workspace across calls, so integrating many parameter
//! points in a sweep does not allocate per point.

mod dopri;
mod fixed;

pub use dopri::{AdaptiveOptions, DormandPrince45};
pub use fixed::{Euler, Rk4};

/// Flow control returned by trajectory observers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Control {
    /// Keep integrating.
    Continue,
    /// Stop after the current accepted step.
    Stop,
}

/// Why an integration run failed.
#[derive(Debug, Clone, PartialEq)]
pub enum IntegrationError {
    /// The adaptive controller pushed the step size below its floor
    /// without meeting the error tolerance (usually a sign of a
    /// discontinuous or non-finite right-hand side).
    StepSizeUnderflow {
        /// Time at which the controller gave up.
        t: f64,
    },
    /// The step budget ran out before reaching the end time.
    MaxStepsExceeded {
        /// Time reached when the budget was exhausted.
        t: f64,
    },
    /// The state or derivative became NaN/∞.
    NonFinite {
        /// Time of the offending evaluation.
        t: f64,
    },
}

impl std::fmt::Display for IntegrationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::StepSizeUnderflow { t } => {
                write!(f, "step size underflow at t = {t}")
            }
            Self::MaxStepsExceeded { t } => {
                write!(f, "maximum step count exceeded at t = {t}")
            }
            Self::NonFinite { t } => write!(f, "non-finite state or derivative at t = {t}"),
        }
    }
}

impl std::error::Error for IntegrationError {}

/// Options for driving an integration until the system stops moving.
///
/// The mean-field systems of the paper flow towards an attracting fixed
/// point; "steady" means `‖dy/dt‖∞ < tol`.
#[derive(Debug, Clone, Copy)]
pub struct SteadyStateOptions {
    /// Declare steady when the max-abs derivative drops below this.
    pub tol: f64,
    /// Give up (with `converged = false`) at this time horizon.
    pub t_max: f64,
    /// Do not test for steadiness before this time (lets transients
    /// leave the neighbourhood of a trivial initial state).
    pub min_time: f64,
}

impl Default for SteadyStateOptions {
    fn default() -> Self {
        // The reachable residual is floored by the integrator's own
        // tolerances (rtol ~ 1e-9 leaves ~1e-10 of derivative noise near
        // a fixed point), so the default asks for no more than that;
        // fixed points needing more precision are Newton-polished.
        Self {
            tol: 1e-10,
            t_max: 1e6,
            min_time: 1.0,
        }
    }
}

/// Step-control diagnostics for the most recent adaptive run.
///
/// Collected unconditionally (the bookkeeping is a handful of scalar
/// ops per step); retrieve via [`DormandPrince45::last_run_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StepStats {
    /// Accepted step count.
    pub accepted: u64,
    /// Rejected step count (error-controller rejections and non-finite
    /// retries alike).
    pub rejected: u64,
    /// Smallest accepted step size (0 when no step was accepted).
    pub min_h: f64,
    /// Largest accepted step size.
    pub max_h: f64,
    /// Longest run of consecutive rejections.
    pub max_reject_streak: u64,
}

impl StepStats {
    /// Heuristic stiffness flag: long rejection streaks mean the error
    /// controller is fighting the problem, the classic symptom of
    /// integrating a stiff system with an explicit method.
    pub fn stiffness_hint(&self) -> bool {
        self.max_reject_streak >= 5
    }
}

/// Outcome of [`DormandPrince45::integrate_to_steady`].
#[derive(Debug, Clone, Copy)]
pub struct SteadyReport {
    /// Time at which integration stopped.
    pub t: f64,
    /// `‖dy/dt‖∞` at the stopping point.
    pub residual: f64,
    /// Whether the residual criterion was met (as opposed to hitting
    /// `t_max`).
    pub converged: bool,
    /// Number of accepted steps taken.
    pub steps: u64,
}
