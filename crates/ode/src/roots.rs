//! Scalar root finding: bisection and Brent's method.
//!
//! Used for the paper's one-dimensional fixed-point constants (e.g. the
//! threshold model's `π_T` when validating the closed form) and for
//! inverting performance metrics in the benchmark sweeps.

/// Errors from the scalar root finders.
#[derive(Debug, Clone, PartialEq)]
pub enum RootError {
    /// `f(a)` and `f(b)` have the same sign, so no bracketed root exists.
    NoBracket {
        /// `f` at the left endpoint.
        fa: f64,
        /// `f` at the right endpoint.
        fb: f64,
    },
    /// The iteration budget was exhausted before convergence.
    MaxIterations,
    /// The function returned a non-finite value.
    NonFinite,
}

impl std::fmt::Display for RootError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NoBracket { fa, fb } => {
                write!(f, "no sign change on bracket: f(a) = {fa}, f(b) = {fb}")
            }
            Self::MaxIterations => write!(f, "root finder exceeded its iteration budget"),
            Self::NonFinite => write!(f, "function returned a non-finite value"),
        }
    }
}

impl std::error::Error for RootError {}

const MAX_ITERS: usize = 200;

/// Bisection on `[a, b]`; requires `f(a)` and `f(b)` to differ in sign.
/// Converges linearly but unconditionally; `tol` bounds the bracket
/// width of the returned root.
pub fn bisect(
    mut f: impl FnMut(f64) -> f64,
    mut a: f64,
    mut b: f64,
    tol: f64,
) -> Result<f64, RootError> {
    let mut fa = f(a);
    let fb = f(b);
    if !fa.is_finite() || !fb.is_finite() {
        return Err(RootError::NonFinite);
    }
    if fa == 0.0 {
        return Ok(a);
    }
    if fb == 0.0 {
        return Ok(b);
    }
    if fa.signum() == fb.signum() {
        return Err(RootError::NoBracket { fa, fb });
    }
    for _ in 0..MAX_ITERS {
        let mid = 0.5 * (a + b);
        if (b - a).abs() <= tol {
            return Ok(mid);
        }
        let fm = f(mid);
        if !fm.is_finite() {
            return Err(RootError::NonFinite);
        }
        if fm == 0.0 {
            return Ok(mid);
        }
        if fm.signum() == fa.signum() {
            a = mid;
            fa = fm;
        } else {
            b = mid;
        }
    }
    Err(RootError::MaxIterations)
}

/// Brent's method on `[a, b]`; requires a sign change. Combines inverse
/// quadratic interpolation, secant steps, and bisection for guaranteed
/// superlinear convergence on continuous functions.
///
/// ```
/// use loadsteal_ode::brent;
/// // The golden-ratio-like stability threshold of Theorem 1:
/// // π₂(λ) = 1/2 at the root of λ² − λ/2 − 1/4.
/// let lambda_star = brent(|l| l * l - 0.5 * l - 0.25, 0.5, 1.0, 1e-14).unwrap();
/// assert!((lambda_star - 0.25 * (1.0 + 5.0f64.sqrt())).abs() < 1e-12);
/// ```
pub fn brent(mut f: impl FnMut(f64) -> f64, a: f64, b: f64, tol: f64) -> Result<f64, RootError> {
    let (mut a, mut b) = (a, b);
    let mut fa = f(a);
    let mut fb = f(b);
    if !fa.is_finite() || !fb.is_finite() {
        return Err(RootError::NonFinite);
    }
    if fa == 0.0 {
        return Ok(a);
    }
    if fb == 0.0 {
        return Ok(b);
    }
    if fa.signum() == fb.signum() {
        return Err(RootError::NoBracket { fa, fb });
    }
    if fa.abs() < fb.abs() {
        std::mem::swap(&mut a, &mut b);
        std::mem::swap(&mut fa, &mut fb);
    }
    let mut c = a;
    let mut fc = fa;
    let mut d = b - a;
    let mut mflag = true;
    for _ in 0..MAX_ITERS {
        if fb == 0.0 || (b - a).abs() <= tol {
            return Ok(b);
        }
        let mut s = if fa != fc && fb != fc {
            // Inverse quadratic interpolation.
            a * fb * fc / ((fa - fb) * (fa - fc))
                + b * fa * fc / ((fb - fa) * (fb - fc))
                + c * fa * fb / ((fc - fa) * (fc - fb))
        } else {
            // Secant.
            b - fb * (b - a) / (fb - fa)
        };
        let lo = (3.0 * a + b) / 4.0;
        let cond1 = !((s > lo.min(b) && s < lo.max(b)) || (s < lo.min(b) && s > lo.max(b)));
        let cond2 = mflag && (s - b).abs() >= (b - c).abs() / 2.0;
        let cond3 = !mflag && (s - b).abs() >= d.abs() / 2.0;
        let cond4 = mflag && (b - c).abs() < tol;
        let cond5 = !mflag && d.abs() < tol;
        if cond1 || cond2 || cond3 || cond4 || cond5 {
            s = 0.5 * (a + b);
            mflag = true;
        } else {
            mflag = false;
        }
        let fs = f(s);
        if !fs.is_finite() {
            return Err(RootError::NonFinite);
        }
        d = b - c;
        c = b;
        fc = fb;
        if fa.signum() != fs.signum() {
            b = s;
            fb = fs;
        } else {
            a = s;
            fa = fs;
        }
        if fa.abs() < fb.abs() {
            std::mem::swap(&mut a, &mut b);
            std::mem::swap(&mut fa, &mut fb);
        }
    }
    Err(RootError::MaxIterations)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bisect_finds_sqrt2() {
        let r = bisect(|x| x * x - 2.0, 0.0, 2.0, 1e-12).unwrap();
        assert!((r - 2.0_f64.sqrt()).abs() < 1e-10);
    }

    #[test]
    fn brent_finds_sqrt2_fast() {
        let mut evals = 0;
        let r = brent(
            |x| {
                evals += 1;
                x * x - 2.0
            },
            0.0,
            2.0,
            1e-14,
        )
        .unwrap();
        assert!((r - 2.0_f64.sqrt()).abs() < 1e-12);
        // Superlinear: far fewer evaluations than bisection's ~47 for
        // a 2-wide bracket at 1e-14.
        assert!(evals < 45, "brent used {evals} evaluations");
    }

    #[test]
    fn brent_on_transcendental() {
        let r = brent(|x| x.cos() - x, 0.0, 1.0, 1e-14).unwrap();
        assert!((r.cos() - r).abs() < 1e-12);
    }

    #[test]
    fn endpoints_that_are_roots_short_circuit() {
        assert_eq!(bisect(|x| x, 0.0, 1.0, 1e-12).unwrap(), 0.0);
        assert_eq!(brent(|x| x - 1.0, 0.0, 1.0, 1e-12).unwrap(), 1.0);
    }

    #[test]
    fn no_bracket_is_an_error() {
        assert!(matches!(
            bisect(|x| x * x + 1.0, -1.0, 1.0, 1e-9),
            Err(RootError::NoBracket { .. })
        ));
        assert!(matches!(
            brent(|x| x * x + 1.0, -1.0, 1.0, 1e-9),
            Err(RootError::NoBracket { .. })
        ));
    }

    #[test]
    fn nonfinite_function_is_an_error() {
        assert!(matches!(
            brent(|x| if x > 0.5 { f64::NAN } else { -1.0 }, 0.0, 1.0, 1e-9),
            Err(RootError::NonFinite)
        ));
    }
}
