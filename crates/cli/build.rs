//! Embeds the git revision (when available) for run manifests.

use std::process::Command;

fn main() {
    let rev = Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_default();
    println!("cargo:rustc-env=LOADSTEAL_GIT_REV={rev}");
    // Re-run when HEAD moves; harmless if the path does not exist.
    println!("cargo:rerun-if-changed=../../.git/HEAD");
}
