//! `loadsteal` — command-line interface to the mean-field work-stealing
//! models (Mitzenmacher, SPAA 1998) and the companion simulator.
//!
//! ```text
//! loadsteal solve    --model simple --lambda 0.9
//! loadsteal solve    --model general --lambda 0.9 --threshold 6 --choices 2 --batch 3
//! loadsteal tails    --model threshold --lambda 0.9 --threshold 4 --levels 12
//! loadsteal simulate --n 128 --lambda 0.9 --policy simple --runs 5
//! loadsteal stability --lambda 0.9
//! loadsteal drain    --initial 20 --n 128
//! ```

mod args;
mod commands;
mod obs;
mod top;

use std::process::ExitCode;

/// Value-less boolean flags, recognized by every subcommand.
const SWITCHES: &[&str] = &[
    "quiet",
    "lossy",
    "quick",
    "full",
    "flight-recorder",
    "trace-jobs",
    "stealbench",
    "once",
];

/// Commands that take a positional operand (everything else rejects
/// bare arguments, preserving early typo detection).
const POSITIONAL_COMMANDS: &[&str] = &["report", "jobs", "transient"];

fn main() -> ExitCode {
    let mut argv = std::env::args().skip(1);
    let Some(mut cmd) = argv.next() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    // `loadsteal profile <command> [flags]`: run the wrapped command
    // under the span profiler and print a self-time report afterwards.
    let mut profile_report = false;
    if cmd == "profile" {
        match argv.next() {
            Some(inner) if inner != "profile" => {
                profile_report = true;
                cmd = inner;
            }
            _ => {
                eprintln!("error: usage: loadsteal profile <command> [flags]\n\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }
    let mut parsed = match args::Args::parse_mixed(argv, SWITCHES).and_then(|a| {
        if !POSITIONAL_COMMANDS.contains(&cmd.as_str()) {
            a.ensure_no_positionals()?;
        }
        Ok(a)
    }) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    // Cross-cutting observability flags, valid on every subcommand:
    // `--profile <out>` exports the span profile, `--flight-recorder`
    // arms the crash-dump ring.
    let profile_out = parsed.take("profile");
    // `--flight-dir` redirects crash dumps (flag > LOADSTEAL_FLIGHT_DIR
    // env > working directory); taken even without --flight-recorder so
    // it is never an unknown-flag error.
    let flight_dir = parsed.take("flight-dir");
    if flight_dir.is_some() {
        loadsteal_obs::flight::set_dump_dir(flight_dir);
    }
    if parsed.switch("flight-recorder") {
        loadsteal_obs::flight::install(loadsteal_obs::flight::DEFAULT_CAPACITY);
    }
    let profiling = profile_report || profile_out.is_some();
    if profiling {
        loadsteal_obs::span::set_enabled(true);
    }
    if parsed.switch("quiet") {
        loadsteal_obs::log::set_quiet(true);
    }
    let wall = std::time::Instant::now();
    let (result, wall_ms) = {
        // Root span over command dispatch, so profiled self-times sum
        // to the command's wall time.
        let _root = profiling.then(|| loadsteal_obs::span::span_dyn(format!("cli.{cmd}")));
        let r = match cmd.as_str() {
            "solve" => commands::solve(&parsed),
            "tails" => commands::tails(&parsed),
            "models" => commands::models(&parsed),
            "simulate" => commands::simulate(&parsed),
            "stability" => commands::stability(&parsed),
            "converge" => commands::converge(&parsed),
            "drain" => commands::drain(&parsed),
            "stealbench" => commands::stealbench(&parsed),
            "report" => commands::report(&parsed),
            "jobs" => commands::jobs(&parsed),
            "transient" => commands::transient(&parsed),
            "serve" => commands::serve(&parsed),
            "top" => top::top(&parsed),
            "verify" => commands::verify(&parsed),
            "help" | "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => Err(format!("unknown command {other:?}\n\n{USAGE}")),
        };
        // Wall is read before the root span's drop flushes thread-local
        // profiles to the global table, so the report's coverage line
        // compares span self-time against dispatch time alone, not
        // dispatch plus profile-merge/snapshot cost.
        (r, wall.elapsed().as_secs_f64() * 1_000.0)
    };
    if profiling {
        let report = loadsteal_obs::span::snapshot();
        if let Some(path) = &profile_out {
            if let Err(e) = commands::write_profile(path, &report) {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
        if profile_report {
            print!("{}", commands::render_profile(&report, wall_ms));
        }
    }
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
loadsteal — mean-field analyses of load stealing (Mitzenmacher, SPAA 1998)

USAGE:
  loadsteal models [--lambda <λ>]
      List the model-registry presets with their paper sections,
      fixed-point tail ratios λ/(1+λ−π₂), and canonical spec strings.
  loadsteal solve --model <MODEL> --lambda <λ> [model flags]
      Fixed point and metrics of a mean-field model.
  loadsteal tails --model <MODEL> --lambda <λ> [--levels N] [model flags]
      Print the fixed-point occupancy tails s_i.
  loadsteal simulate (--model <MODEL> | --lambda <λ> [--policy P]) [--n N] [sim flags]
      Discrete-event simulation of the finite system (--n defaults to
      128, the paper's largest simulated size).
  loadsteal stability --lambda <λ> [--t-max T]
      L1-contraction check towards the fixed point (Section 4).
  loadsteal converge (--model <MODEL> | --lambda <λ>) [--n-min N] [--n-max N] [sim flags]
      Finite-size convergence rate: sweep n over a geometric grid
      (default 128..2048), measure the stationary tail error against
      the mean-field fixed point, and fit the log-log slope — Θ(1/n)
      means a slope near −1. Prints a grep-able `convergence slope:`
      line; --metrics-json exports converge.* gauges.
  loadsteal drain --initial <m0> [--n N] [--internal λint]
      Static-system drain: mean-field vs simulated makespan.
  loadsteal stealbench [--workers N] [--lambda <λ>] [--horizon T] [--tau-ms ms] [--seed S]
      Drive the real work-stealing thread pool (Chase–Lev deques, one
      steal probe per transition-to-empty) with a Poisson(λ) task
      stream per worker and Exp(1) service times, τ wall-milliseconds
      per model time unit. Prints the measured steal success rate
      against the fixed point's π₂; with --trace the pool emits
      loadsteal.trace.v1 events, so the measured trace pipes straight
      into `loadsteal report -`.
  loadsteal report <trace.ndjson|-> [--lossy] [--warmup T] [--model M] [--lambda λ]
      Reconstruct a timeline from an NDJSON trace and compare the
      measured statistics against the mean-field prediction. The model
      is resolved from the trace's header line when neither --model nor
      --lambda is given. `-` reads from stdin, piping from
      `simulate --trace -` or `stealbench --trace -`.
  loadsteal jobs <trace.ndjson|-> [--lossy] [--warmup T]
      Reconstruct per-job causal timelines from a `--trace-jobs` trace:
      sojourn decomposition (queue wait + transfer + service),
      migrated-vs-local sojourn percentiles, and migration-chain
      statistics. `-` reads the trace from stdin, so it pipes directly
      from `simulate --trace-jobs --trace -`.
  loadsteal transient <trace.ndjson|-> [--lossy] [--model M] [--lambda λ] [--n N] [--epsilon ε]
      Replay the `tail_sample` stream of a `--sample-tails` trace
      against the mean-field ODE trajectory integrated on the same
      grid: per-time residuals, sup-norm deviation ‖ŝ−s‖∞, empirical
      relaxation time, and drift events outside the CI envelope. `-`
      reads from stdin, piping from `simulate --sample-tails Δ --trace -`.
  loadsteal serve --prom-addr <host:port> --n <N> --lambda <λ> [sim flags]
      Run a simulation while serving its live metrics registry in
      Prometheus text format (`--prom-addr host:0` picks a free port;
      `--scrapes N` exits after N scrapes). With --stealbench the
      workload is the real work-stealing pool instead, and the scrape
      carries live exec.worker.<i>.* per-worker gauges (deque/inbox
      depth, steals, parks) refreshed per request.
  loadsteal top [--workers N --lambda <λ> --horizon T --tau-ms ms --seed S]
                [--interval ms] [--once] [--url http://host:port/metrics]
      Live dashboard over the work-stealing executor: per-worker deque
      and inbox depth, steal probes/hits, parks, events/sec, and the
      measured per-worker λ̂. Without --url it runs the stealbench
      workload in-process and polls the pool's lock-free per-worker
      counters; with --url it scrapes a `loadsteal serve` endpoint
      (including transient.residual_* drift gauges when present).
      --once prints a single plain frame and exits (CI smoke).
  loadsteal profile <command> [flags]
      Run any subcommand under the hierarchical span profiler and print
      a self-time table (top spans by self time, simulator events/sec
      per phase). Combine with --profile <out> to also export the
      spans.
  loadsteal verify [--quick|--full] [--seed S] [--filter SUBSTR]
      Statistical verification harness: differential (simulation vs
      mean-field fixed point across the model zoo), metamorphic,
      convergence-order, and seed-replay checks. --quick (default) is
      CI-sized; --full re-simulates the paper's Table 1-4 grids.
      Exits nonzero if any check fails.

MODELS (--model, shared by solve/tails/simulate/report):
  A registry preset name (see `loadsteal models`), optionally followed
  by comma-separated key=value overrides, or a bare spec:
      --model simple-ws
      --model \"threshold-erlang,lambda=0.9\"
      --model \"lambda=0.85,policy=steal,T=4,d=2,k=1,service=erlang:10\"
  Keys: lambda, policy (none|steal|preemptive|repeated|rebalance|share),
  T, d, k, B, r, per-task, send, recv, service (exp|det|erlang:<c>|
  hyper:<p>:<r1>:<r2>), arrival (poisson|erlang:<c>), transfer,
  speeds (homogeneous|classes:<frac>:<fast>:<slow>). Last key wins, so
  `--lambda` composes with presets as an override.

  Legacy names (for solve/tails, with per-knob flags):
  simple | nosteal | threshold [--threshold T] | general [--threshold T
  --choices d --batch k] | multichoice | multisteal | preemptive
  [--begin B --threshold T] | repeated [--rate r] | erlang [--stages c]
  | transfer [--rate r] | rebalance [--rate r [--per-task true]] |
  heterogeneous [--fast-frac α --fast μf --slow μs]

SIM POLICIES (for simulate without --model):
  none | simple | threshold | preemptive | repeated | rebalance
  with flags --threshold, --choices, --batch, --begin, --rate,
  --transfer-rate, --runs, --horizon, --warmup, --seed, --engine
  (heap|calendar: the future-event-list implementation; calendar is
  the default, heap is the differential-testing oracle — both produce
  bit-identical traces for a given seed)

OBSERVABILITY (solve and simulate; --profile and --flight-recorder work
on every subcommand):
  --trace <file.ndjson|->   stream every solver/simulator event as NDJSON;
                            `-` writes to stdout (narrative moves to stderr)
  --trace-jobs              (simulate) add per-job lifecycle events
                            (job_arrival/job_migrate/job_service_start/
                            job_completion) to the trace and job.* counters
                            to the metrics; analyse with `loadsteal jobs`
  --sample-tails <Δt>       (simulate/serve) emit a tail_sample event with
                            the empirical tail vector ŝ₁..ŝ₈ every Δt
                            simulated seconds; analyse with `loadsteal
                            transient`, or scrape live sim.tail_s<i> and
                            transient.residual_* gauges from `serve`
  --metrics-json <file|->   write the loadsteal.run.v1 document (manifest
                            + metrics, including sojourn-time quantile
                            sketches); `-` prints to stdout likewise
  --trace-sample <k>        keep only every k-th event per kind in the
                            NDJSON trace (counters stay exact; the header
                            records the stride so readers know the trace
                            is sampled). Default 1 = complete trace
  --profile <out>           export the hierarchical span profile: Chrome
                            trace-event JSON (chrome://tracing, Perfetto)
                            by default, folded stacks for inferno /
                            flamegraph.pl when the path ends in .folded
  --flight-recorder         keep a fixed-capacity ring of recent events;
                            a panic dumps it to loadsteal-crash-<pid>.ndjson
  --flight-dir <dir>        directory for flight-recorder crash dumps
                            (default: $LOADSTEAL_FLIGHT_DIR, then the
                            working directory)
  --heartbeat-every <K>     simulator heartbeat cadence in events
                            (default 65536; 0 disables)
  --quiet                   silence the human narrative entirely
  LOADSTEAL_LOG=off|info|debug   stderr diagnostics filter (default info)
";
