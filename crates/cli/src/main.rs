//! `loadsteal` — command-line interface to the mean-field work-stealing
//! models (Mitzenmacher, SPAA 1998) and the companion simulator.
//!
//! ```text
//! loadsteal solve    --model simple --lambda 0.9
//! loadsteal solve    --model general --lambda 0.9 --threshold 6 --choices 2 --batch 3
//! loadsteal tails    --model threshold --lambda 0.9 --threshold 4 --levels 12
//! loadsteal simulate --n 128 --lambda 0.9 --policy simple --runs 5
//! loadsteal stability --lambda 0.9
//! loadsteal drain    --initial 20 --n 128
//! ```

mod args;
mod commands;
mod obs;

use std::process::ExitCode;

/// Value-less boolean flags, recognized by every subcommand.
const SWITCHES: &[&str] = &["quiet", "lossy", "quick", "full"];

/// Commands that take a positional operand (everything else rejects
/// bare arguments, preserving early typo detection).
const POSITIONAL_COMMANDS: &[&str] = &["report"];

fn main() -> ExitCode {
    let mut argv = std::env::args().skip(1);
    let Some(cmd) = argv.next() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let parsed = match args::Args::parse_mixed(argv, SWITCHES).and_then(|a| {
        if !POSITIONAL_COMMANDS.contains(&cmd.as_str()) {
            a.ensure_no_positionals()?;
        }
        Ok(a)
    }) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    if parsed.switch("quiet") {
        loadsteal_obs::log::set_quiet(true);
    }
    let result = match cmd.as_str() {
        "solve" => commands::solve(&parsed),
        "tails" => commands::tails(&parsed),
        "simulate" => commands::simulate(&parsed),
        "stability" => commands::stability(&parsed),
        "drain" => commands::drain(&parsed),
        "report" => commands::report(&parsed),
        "serve" => commands::serve(&parsed),
        "verify" => commands::verify(&parsed),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => Err(format!("unknown command {other:?}\n\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
loadsteal — mean-field analyses of load stealing (Mitzenmacher, SPAA 1998)

USAGE:
  loadsteal solve --model <MODEL> --lambda <λ> [model flags]
      Fixed point and metrics of a mean-field model.
  loadsteal tails --model <MODEL> --lambda <λ> [--levels N] [model flags]
      Print the fixed-point occupancy tails s_i.
  loadsteal simulate --n <N> --lambda <λ> [--policy P] [sim flags]
      Discrete-event simulation of the finite system.
  loadsteal stability --lambda <λ> [--t-max T]
      L1-contraction check towards the fixed point (Section 4).
  loadsteal drain --initial <m0> [--n N] [--internal λint]
      Static-system drain: mean-field vs simulated makespan.
  loadsteal report <trace.ndjson> [--lossy] [--warmup T] [--lambda λ]
      Reconstruct a timeline from an NDJSON trace and compare the
      measured statistics against the mean-field prediction.
  loadsteal serve --prom-addr <host:port> --n <N> --lambda <λ> [sim flags]
      Run a simulation while serving its live metrics registry in
      Prometheus text format (`--prom-addr host:0` picks a free port;
      `--scrapes N` exits after N scrapes).
  loadsteal verify [--quick|--full] [--seed S] [--filter SUBSTR]
      Statistical verification harness: differential (simulation vs
      mean-field fixed point across the model zoo), metamorphic,
      convergence-order, and seed-replay checks. --quick (default) is
      CI-sized; --full re-simulates the paper's Table 1-4 grids.
      Exits nonzero if any check fails.

MODELS (for solve/tails):
  simple                           λ only
  nosteal                          λ only
  threshold                        --threshold T
  general                          --threshold T --choices d --batch k
  multichoice                      --threshold T --choices d
  multisteal                       --threshold T --batch k
  preemptive                       --begin B --threshold T (relative)
  repeated                         --rate r --threshold T
  erlang                           --stages c
  transfer                         --rate r --threshold T
  rebalance                        --rate r [--per-task true]
  heterogeneous                    --fast-frac α --fast μf --slow μs --threshold T

SIM POLICIES (for simulate):
  none | simple | threshold | preemptive | repeated | rebalance
  with flags --threshold, --choices, --batch, --begin, --rate,
  --transfer-rate, --runs, --horizon, --warmup, --seed

OBSERVABILITY (solve and simulate):
  --trace <file.ndjson|->   stream every solver/simulator event as NDJSON;
                            `-` writes to stdout (narrative moves to stderr)
  --metrics-json <file|->   write the loadsteal.run.v1 document (manifest
                            + metrics, including sojourn-time quantile
                            sketches); `-` prints to stdout likewise
  --heartbeat-every <K>     simulator heartbeat cadence in events
                            (default 65536; 0 disables)
  --quiet                   silence the human narrative entirely
  LOADSTEAL_LOG=off|info|debug   stderr diagnostics filter (default info)
";
