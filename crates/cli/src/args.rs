//! Minimal `--key value` argument parsing (no external dependencies).

use std::collections::BTreeMap;

/// Parsed command line: a subcommand plus `--key value` flags and
/// boolean `--switch` flags.
#[derive(Debug, Clone, Default)]
pub struct Args {
    flags: BTreeMap<String, String>,
    switches: Vec<String>,
    positionals: Vec<String>,
}

impl Args {
    /// Parse flags from an iterator of raw arguments (after the
    /// subcommand). `--flag value` and `--flag=value` are both accepted.
    #[cfg_attr(not(test), allow(dead_code))] // switch-free entry point, exercised by tests
    pub fn parse(raw: impl Iterator<Item = String>) -> Result<Self, String> {
        Self::parse_with_switches(raw, &[])
    }

    /// [`Self::parse`], but the named flags are value-less boolean
    /// switches (`--quiet`): present or absent, never consuming the
    /// following argument. Positional arguments are rejected.
    pub fn parse_with_switches(
        raw: impl Iterator<Item = String>,
        switch_names: &[&str],
    ) -> Result<Self, String> {
        let a = Self::parse_mixed(raw, switch_names)?;
        a.ensure_no_positionals()?;
        Ok(a)
    }

    /// [`Self::parse_with_switches`], but bare (non-`--`) arguments are
    /// collected as positionals instead of rejected — for commands like
    /// `report <trace.ndjson>` that take a file operand.
    pub fn parse_mixed(
        raw: impl Iterator<Item = String>,
        switch_names: &[&str],
    ) -> Result<Self, String> {
        let mut flags = BTreeMap::new();
        let mut switches = Vec::new();
        let mut positionals = Vec::new();
        let mut raw = raw.peekable();
        while let Some(arg) = raw.next() {
            let Some(name) = arg.strip_prefix("--") else {
                positionals.push(arg);
                continue;
            };
            if let Some((k, v)) = name.split_once('=') {
                flags.insert(k.to_string(), v.to_string());
            } else if switch_names.contains(&name) {
                switches.push(name.to_string());
            } else {
                let value = raw
                    .next()
                    .ok_or_else(|| format!("flag --{name} needs a value"))?;
                flags.insert(name.to_string(), value);
            }
        }
        Ok(Self {
            flags,
            switches,
            positionals,
        })
    }

    /// Error out if any positional argument was given (commands that
    /// take none call this to catch stray operands early).
    pub fn ensure_no_positionals(&self) -> Result<(), String> {
        match self.positionals.first() {
            None => Ok(()),
            Some(p) => Err(format!("unexpected positional argument: {p}")),
        }
    }

    /// The `i`-th positional argument, if present.
    pub fn positional(&self, i: usize) -> Option<&str> {
        self.positionals.get(i).map(|s| s.as_str())
    }

    /// Whether a boolean switch (declared at parse time) was given.
    pub fn switch(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }

    /// A required flag, parsed.
    pub fn required<T: std::str::FromStr>(&self, name: &str) -> Result<T, String> {
        let v = self
            .flags
            .get(name)
            .ok_or_else(|| format!("missing required flag --{name}"))?;
        v.parse()
            .map_err(|_| format!("flag --{name}: cannot parse {v:?}"))
    }

    /// An optional flag with a default.
    pub fn get_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.flags.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("flag --{name}: cannot parse {v:?}")),
        }
    }

    /// An optional flag.
    pub fn get<T: std::str::FromStr>(&self, name: &str) -> Result<Option<T>, String> {
        match self.flags.get(name) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| format!("flag --{name}: cannot parse {v:?}")),
        }
    }

    /// Raw string flag.
    pub fn raw(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(|s| s.as_str())
    }

    /// Remove and return a valued flag. Used for flags handled
    /// centrally in `main` (e.g. `--profile`) so they never reach — and
    /// never have to be declared in — per-command `ensure_known` lists.
    pub fn take(&mut self, name: &str) -> Option<String> {
        self.flags.remove(name)
    }

    /// Reject unknown flags (catches typos early). Switches were
    /// validated against their declared names at parse time, so only
    /// valued flags are checked here.
    pub fn ensure_known(&self, known: &[&str]) -> Result<(), String> {
        for k in self.flags.keys() {
            if !known.contains(&k.as_str()) {
                return Err(format!(
                    "unknown flag --{k}; known flags: {}",
                    known.join(", ")
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(parts: &[&str]) -> Args {
        Args::parse(parts.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn parses_separate_and_equals_forms() {
        let a = parse(&["--lambda", "0.9", "--threshold=4"]);
        assert_eq!(a.required::<f64>("lambda").unwrap(), 0.9);
        assert_eq!(a.required::<usize>("threshold").unwrap(), 4);
    }

    #[test]
    fn defaults_apply() {
        let a = parse(&["--lambda", "0.5"]);
        assert_eq!(a.get_or("runs", 3usize).unwrap(), 3);
    }

    #[test]
    fn missing_value_is_an_error() {
        assert!(Args::parse(["--lambda".to_string()].into_iter()).is_err());
    }

    #[test]
    fn positional_arguments_are_rejected() {
        assert!(Args::parse(["oops".to_string()].into_iter()).is_err());
    }

    #[test]
    fn unknown_flags_are_caught() {
        let a = parse(&["--lambda", "0.5", "--tresh", "2"]);
        assert!(a.ensure_known(&["lambda", "threshold"]).is_err());
        assert!(a.ensure_known(&["lambda", "tresh"]).is_ok());
    }

    #[test]
    fn bad_parse_reports_flag_name() {
        let a = parse(&["--lambda", "abc"]);
        let err = a.required::<f64>("lambda").unwrap_err();
        assert!(err.contains("lambda"));
    }

    #[test]
    fn switches_do_not_consume_values() {
        let a = Args::parse_with_switches(
            ["--quiet", "--lambda", "0.9"].iter().map(|s| s.to_string()),
            &["quiet"],
        )
        .unwrap();
        assert!(a.switch("quiet"));
        assert_eq!(a.required::<f64>("lambda").unwrap(), 0.9);
        assert!(!a.switch("verbose"));
    }

    #[test]
    fn trailing_switch_is_not_a_missing_value() {
        let a = Args::parse_with_switches(
            ["--lambda", "0.9", "--quiet"].iter().map(|s| s.to_string()),
            &["quiet"],
        )
        .unwrap();
        assert!(a.switch("quiet"));
    }

    #[test]
    fn mixed_parsing_collects_positionals() {
        let a = Args::parse_mixed(
            ["trace.ndjson", "--warmup", "50", "--lossy"]
                .iter()
                .map(|s| s.to_string()),
            &["lossy"],
        )
        .unwrap();
        assert_eq!(a.positional(0), Some("trace.ndjson"));
        assert_eq!(a.positional(1), None);
        assert!(a.switch("lossy"));
        assert_eq!(a.get_or("warmup", 0.0).unwrap(), 50.0);
        assert!(a.ensure_no_positionals().is_err());
    }

    #[test]
    fn undeclared_switch_still_needs_a_value() {
        // Without the declaration, `--quiet` is a valued flag and a
        // trailing one is an error — the seed behaviour is preserved.
        assert!(Args::parse(["--quiet".to_string()].into_iter()).is_err());
    }
}
