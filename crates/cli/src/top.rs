//! `loadsteal top` — live terminal dashboard over the work-stealing
//! executor.
//!
//! Two sources, one table:
//!
//! * **In-process** (default): build the `stealbench` workload
//!   untraced, drive it on a background thread, and poll
//!   [`Pool::worker_stats`](loadsteal_exec::Pool::worker_stats) — the
//!   lock-free per-worker counter slots — every `--interval` ms.
//! * **Scrape** (`--url http://host:port/metrics`): poll a running
//!   `loadsteal serve --stealbench` endpoint and rebuild the same rows
//!   from its `loadsteal_exec_worker_<i>_*` Prometheus gauges (plus
//!   any `loadsteal_transient_residual_*` drift gauges a simulator
//!   serve exposes).
//!
//! Output is plain ANSI: each frame clears the screen and redraws;
//! `--once` prints a single frame with no escape codes (the CI smoke
//! path and the pipe-friendly mode).

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use loadsteal_exec::stealbench::{StealBench, StealBenchConfig};
use loadsteal_exec::WorkerStats;

use crate::args::Args;

/// One dashboard row, source-agnostic.
struct Row {
    deque: u64,
    inbox: u64,
    attempts: u64,
    steals: u64,
    parks: u64,
    /// `None` when the source does not report liveness (scrape mode
    /// exposes busy only; parked is inferred as "not busy").
    busy: Option<bool>,
}

/// One rendered frame's scalars.
struct Totals {
    submitted: Option<u64>,
    completed: Option<u64>,
    events_per_sec: Option<f64>,
    lambda_est: Option<f64>,
    /// `transient.residual_*` gauges, verbatim (name, value).
    residuals: Vec<(String, f64)>,
}

/// `loadsteal top` entry point.
pub fn top(a: &Args) -> Result<(), String> {
    a.ensure_known(&[
        "workers", "lambda", "horizon", "tau-ms", "seed", "interval", "url",
    ])?;
    let once = a.switch("once");
    let interval = Duration::from_millis(a.get_or("interval", 500u64)?.max(50));
    match a.raw("url") {
        Some(url) => top_scrape(url, interval, once),
        None => top_in_process(a, interval, once),
    }
}

/// In-process mode: run the bench untraced, poll its pool directly.
fn top_in_process(a: &Args, interval: Duration, once: bool) -> Result<(), String> {
    let cfg = StealBenchConfig {
        workers: a.get_or("workers", 16)?,
        lambda: a.get_or("lambda", 0.9)?,
        horizon: a.get_or("horizon", 400.0)?,
        tau: a.get_or::<f64>("tau-ms", 4.0)? / 1_000.0,
        seed: a.get_or("seed", 42)?,
    };
    let bench = Arc::new(StealBench::new_untraced(&cfg)?);
    let driver = {
        let bench = Arc::clone(&bench);
        std::thread::spawn(move || bench.drive())
    };
    if once {
        // Sample mid-run so the single frame shows a working pool, not
        // the quiescent start: wait out ~40% of the horizon, capped so
        // CI smoke stays fast.
        let wall = Duration::from_secs_f64(cfg.horizon * cfg.tau);
        std::thread::sleep((wall.mul_f64(0.4)).min(Duration::from_secs(1)));
    }
    let mut prev: Option<(Instant, Vec<WorkerStats>, u64)> = None;
    loop {
        let now = Instant::now();
        let per = bench.pool().worker_stats();
        let submitted = bench.submitted_so_far();
        let elapsed = bench.pool().epoch().elapsed().as_secs_f64();
        let (events_per_sec, window_secs) = match &prev {
            Some((t0, per0, sub0)) => {
                let dt = now.duration_since(*t0).as_secs_f64().max(1e-9);
                let d = activity(&per, submitted) - activity(per0, *sub0);
                (d / dt, dt)
            }
            // First frame: average over the whole run so far.
            None => (activity(&per, submitted) / elapsed.max(1e-9), elapsed),
        };
        let _ = window_secs;
        let model_time = (elapsed / cfg.tau).min(cfg.horizon);
        let lambda_est = if model_time > 0.0 {
            Some(submitted as f64 / (model_time * cfg.workers as f64))
        } else {
            None
        };
        let completed: u64 = per.iter().map(|w| w.executed).sum();
        let totals = Totals {
            submitted: Some(submitted),
            completed: Some(completed),
            events_per_sec: Some(events_per_sec),
            lambda_est,
            residuals: Vec::new(),
        };
        let rows: Vec<Row> = per
            .iter()
            .map(|w| Row {
                deque: w.queue_depth as u64,
                inbox: w.inbox_depth as u64,
                attempts: w.steal_attempts,
                steals: w.steal_successes,
                parks: w.parks,
                busy: Some(w.busy),
            })
            .collect();
        let header = format!(
            "loadsteal top — {} workers, λ = {} target, t = {:.1}/{} model units",
            cfg.workers, cfg.lambda, model_time, cfg.horizon
        );
        emit_frame(&header, &rows, &totals, once);
        if once {
            // Abandon the rest of the run: the frame was the product.
            return Ok(());
        }
        if driver.is_finished() {
            break;
        }
        prev = Some((now, per, submitted));
        std::thread::sleep(interval);
    }
    driver
        .join()
        .map_err(|_| "stealbench driver panicked".to_string())?;
    if let Ok(bench) = Arc::try_unwrap(bench) {
        let outcome = bench.finish();
        println!(
            "done: {} submitted, {} completed, steal hit rate {:.4}",
            outcome.submitted,
            outcome.completed,
            outcome.steal_success_rate()
        );
    }
    Ok(())
}

/// Sum of externally visible activity counters — the events/sec
/// numerator (arrivals + completions + steal probes).
fn activity(per: &[WorkerStats], submitted: u64) -> f64 {
    let worker: u64 = per.iter().map(|w| w.executed + w.steal_attempts).sum();
    (worker + submitted) as f64
}

/// Scrape mode: poll a Prometheus endpoint and rebuild the table from
/// `loadsteal_exec_worker_<i>_*` samples.
fn top_scrape(url: &str, interval: Duration, once: bool) -> Result<(), String> {
    let mut prev: Option<(Instant, f64)> = None;
    loop {
        let body = http_get(url)?;
        let now = Instant::now();
        let samples = parse_prometheus(&body);
        let rows = scrape_rows(&samples);
        if rows.is_empty() && !samples.keys().any(|k| k.starts_with("loadsteal_")) {
            return Err(format!("{url}: no loadsteal_* samples in scrape"));
        }
        let submitted = samples.get("loadsteal_exec_submitted").map(|v| *v as u64);
        let completed = samples.get("loadsteal_exec_completed").map(|v| *v as u64);
        let act: f64 = rows
            .iter()
            .map(|r| (r.attempts + r.steals) as f64)
            .sum::<f64>()
            + completed.unwrap_or(0) as f64
            + submitted.unwrap_or(0) as f64;
        let events_per_sec = prev.map(|(t0, act0)| {
            (act - act0).max(0.0) / now.duration_since(t0).as_secs_f64().max(1e-9)
        });
        let residuals: Vec<(String, f64)> = samples
            .iter()
            .filter(|(k, _)| k.starts_with("loadsteal_transient_residual"))
            .map(|(k, v)| (k.clone(), *v))
            .collect();
        let totals = Totals {
            submitted,
            completed,
            events_per_sec,
            lambda_est: None,
            residuals,
        };
        let header = format!("loadsteal top — scraping {url} ({} workers)", rows.len());
        emit_frame(&header, &rows, &totals, once);
        if once {
            return Ok(());
        }
        prev = Some((now, act));
        std::thread::sleep(interval);
    }
}

/// Rebuild per-worker rows from flat Prometheus samples; stops at the
/// first missing worker index, so rows come back dense and ordered.
fn scrape_rows(samples: &BTreeMap<String, f64>) -> Vec<Row> {
    let g = |i: usize, field: &str| -> Option<f64> {
        samples
            .get(&format!("loadsteal_exec_worker_{i}_{field}"))
            .copied()
    };
    let mut rows = Vec::new();
    for i in 0.. {
        let Some(deque) = g(i, "deque_depth") else {
            break;
        };
        rows.push(Row {
            deque: deque as u64,
            inbox: g(i, "inbox_depth").unwrap_or(0.0) as u64,
            attempts: g(i, "steal_attempts").unwrap_or(0.0) as u64,
            steals: g(i, "steals").unwrap_or(0.0) as u64,
            parks: g(i, "parks").unwrap_or(0.0) as u64,
            busy: g(i, "busy").map(|v| v != 0.0),
        });
    }
    rows
}

/// Render one frame to stdout. Live mode clears the screen first
/// (plain ANSI, no cursor tricks); `--once` prints the bare table.
fn emit_frame(header: &str, rows: &[Row], totals: &Totals, once: bool) {
    use std::io::Write as _;
    let mut out = String::new();
    if !once {
        // Clear screen + home — the whole "TUI".
        out.push_str("\x1b[2J\x1b[H");
    }
    out.push_str(header);
    out.push('\n');
    let mut line = String::new();
    if let Some(eps) = totals.events_per_sec {
        line.push_str(&format!("events/sec {eps:.0}"));
    }
    if let Some(l) = totals.lambda_est {
        line.push_str(&format!("  ·  λ̂ = {l:.3} per worker"));
    }
    if let Some(s) = totals.submitted {
        line.push_str(&format!("  ·  submitted {s}"));
    }
    if let Some(c) = totals.completed {
        line.push_str(&format!("  ·  completed {c}"));
    }
    if !line.is_empty() {
        out.push_str(line.trim_start_matches(" ·"));
        out.push('\n');
    }
    out.push_str(&format!(
        "{:>6}  {:>5}  {:>5}  {:>8}  {:>8}  {:>6}  {:>5}  {}\n",
        "WORKER", "DEQUE", "INBOX", "PROBES", "STEALS", "HIT%", "PARKS", "STATE"
    ));
    for (i, r) in rows.iter().enumerate() {
        let hit = if r.attempts > 0 {
            format!("{:.1}", 100.0 * r.steals as f64 / r.attempts as f64)
        } else {
            "-".to_string()
        };
        let state = match r.busy {
            Some(true) => "busy",
            Some(false) => "idle",
            None => "?",
        };
        out.push_str(&format!(
            "{i:>6}  {:>5}  {:>5}  {:>8}  {:>8}  {hit:>6}  {:>5}  {state}\n",
            r.deque, r.inbox, r.attempts, r.steals, r.parks
        ));
    }
    for (name, v) in &totals.residuals {
        out.push_str(&format!("{name} = {v:.6}\n"));
    }
    let mut so = std::io::stdout();
    let _ = so.write_all(out.as_bytes());
    let _ = so.flush();
}

/// Minimal HTTP GET over a plain `TcpStream` (no TLS, no redirects) —
/// enough to scrape a `loadsteal serve` endpoint.
fn http_get(url: &str) -> Result<String, String> {
    use std::io::{Read as _, Write as _};

    let rest = url
        .strip_prefix("http://")
        .ok_or_else(|| format!("--url: only http:// is supported, got {url:?}"))?;
    let (hostport, path) = match rest.split_once('/') {
        Some((h, p)) => (h, format!("/{p}")),
        None => (rest, "/metrics".to_string()),
    };
    let mut stream = std::net::TcpStream::connect(hostport)
        .map_err(|e| format!("--url: cannot connect to {hostport}: {e}"))?;
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    stream
        .write_all(
            format!("GET {path} HTTP/1.1\r\nHost: {hostport}\r\nConnection: close\r\n\r\n")
                .as_bytes(),
        )
        .map_err(|e| format!("--url: request failed: {e}"))?;
    let mut raw = String::new();
    stream
        .read_to_string(&mut raw)
        .map_err(|e| format!("--url: read failed: {e}"))?;
    match raw.split_once("\r\n\r\n") {
        Some((_, body)) => Ok(body.to_string()),
        None => Err(format!("--url: malformed HTTP response from {hostport}")),
    }
}

/// Parse Prometheus text exposition into `name → value`, ignoring
/// comments, labels, and anything that does not parse as a float.
fn parse_prometheus(body: &str) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    for line in body.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some((name, value)) = line.rsplit_once(' ') else {
            continue;
        };
        // Strip a label set if present (none of ours carry labels, but
        // stay tolerant).
        let name = name.split('{').next().unwrap_or(name);
        if let Ok(v) = value.trim().parse::<f64>() {
            out.insert(name.to_string(), v);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prometheus_parser_reads_plain_samples() {
        let body = "\
# HELP loadsteal_exec_worker_0_steals whatever
# TYPE loadsteal_exec_worker_0_steals gauge
loadsteal_exec_worker_0_steals 7
loadsteal_exec_worker_0_deque_depth 2
loadsteal_exec_worker_1_deque_depth 0
loadsteal_up{instance=\"x\"} 1
garbage line without value
";
        let s = parse_prometheus(body);
        assert_eq!(s.get("loadsteal_exec_worker_0_steals"), Some(&7.0));
        assert_eq!(s.get("loadsteal_up"), Some(&1.0));
        let rows = scrape_rows(&s);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].steals, 7);
        assert_eq!(rows[0].deque, 2);
        assert_eq!(rows[1].deque, 0);
    }

    #[test]
    fn scrape_rows_stop_at_first_gap() {
        let mut s = BTreeMap::new();
        s.insert("loadsteal_exec_worker_0_deque_depth".to_string(), 1.0);
        s.insert("loadsteal_exec_worker_2_deque_depth".to_string(), 1.0);
        assert_eq!(scrape_rows(&s).len(), 1);
    }

    #[test]
    fn frames_render_without_panicking() {
        let rows = vec![Row {
            deque: 1,
            inbox: 0,
            attempts: 10,
            steals: 3,
            parks: 4,
            busy: Some(true),
        }];
        let totals = Totals {
            submitted: Some(11),
            completed: Some(9),
            events_per_sec: Some(123.4),
            lambda_est: Some(0.71),
            residuals: vec![("loadsteal_transient_residual_sup".into(), 0.01)],
        };
        emit_frame("test frame", &rows, &totals, true);
    }
}
