//! CLI-side observability plumbing: the composite recorder behind
//! `--trace` / `--metrics-json`, narrative output routing, and run
//! document emission.

use std::fs::File;
use std::io::{BufWriter, Write};

use loadsteal_obs::log::{level_enabled, Level};
use loadsteal_obs::{
    CountingRecorder, Event, EventCounts, MetricsReport, NdjsonRecorder, Recorder, RunManifest,
};

use crate::args::Args;

/// Flags handled by this module; commands append them to their own
/// known-flag lists.
pub const OBS_FLAGS: &[&str] = &["trace", "metrics-json", "trace-sample"];

/// Observability options parsed from the command line.
#[derive(Debug, Clone, Default)]
pub struct ObsOpts {
    /// `--trace <file.ndjson|->`: stream every event as NDJSON (`-`
    /// writes to stdout and moves the narrative to stderr).
    pub trace: Option<String>,
    /// `--metrics-json <file|->`: emit the `loadsteal.run.v1` document.
    pub metrics_json: Option<String>,
    /// `--trace-sample <k>`: keep every k-th event *per kind* in the
    /// NDJSON trace (counters stay exact; the header records the
    /// stride). 1 (default) keeps everything.
    pub trace_sample: u64,
}

impl ObsOpts {
    /// Read the observability flags from parsed arguments. Errors when
    /// both machine-readable streams claim stdout.
    pub fn from_args(a: &Args) -> Result<Self, String> {
        let trace_sample: u64 = a.get_or("trace-sample", 1)?;
        if trace_sample == 0 {
            return Err("--trace-sample must be at least 1 (1 keeps every event)".into());
        }
        let opts = Self {
            trace: a.raw("trace").map(str::to_owned),
            metrics_json: a.raw("metrics-json").map(str::to_owned),
            trace_sample,
        };
        if opts.trace_on_stdout() && opts.json_on_stdout() {
            return Err(
                "--trace - and --metrics-json - both want stdout; send one to a file".into(),
            );
        }
        Ok(opts)
    }

    /// Whether the metrics document goes to stdout.
    pub fn json_on_stdout(&self) -> bool {
        self.metrics_json.as_deref() == Some("-")
    }

    /// Whether the NDJSON trace goes to stdout.
    pub fn trace_on_stdout(&self) -> bool {
        self.trace.as_deref() == Some("-")
    }

    /// Whether stdout carries a machine-readable stream — which moves
    /// the human narrative to stderr so stdout stays parseable.
    pub fn machine_stdout(&self) -> bool {
        self.json_on_stdout() || self.trace_on_stdout()
    }

    /// Build the recorder for this invocation. Disabled (and therefore
    /// free for the instrumented hot loops) when neither output was
    /// requested and the flight recorder is disarmed.
    pub fn recorder(&self) -> Result<CliRecorder, String> {
        let trace = match self.trace.as_deref() {
            None => None,
            Some("-") => {
                let w: Box<dyn Write + Send> = Box::new(std::io::stdout());
                Some(NdjsonRecorder::new(w))
            }
            Some(path) => {
                let f = File::create(path)
                    .map_err(|e| format!("--trace: cannot create {path:?}: {e}"))?;
                let w: Box<dyn Write + Send> = Box::new(BufWriter::new(f));
                Some(NdjsonRecorder::new(w))
            }
        };
        // Hidden fault-injection hook for the crash-dump test suite:
        // panic after N recorded events, mid-simulation, so the flight
        // recorder's panic hook can be exercised from a child process.
        let panic_after = std::env::var("LOADSTEAL_PANIC_AFTER_EVENTS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok());
        Ok(CliRecorder {
            counts: CountingRecorder::new(),
            metrics_wanted: self.metrics_json.is_some(),
            trace,
            sample: self.trace_sample.max(1),
            seen: [0; KIND_SLOTS],
            flight: loadsteal_obs::flight::active(),
            panic_after,
            recorded: 0,
        })
    }

    /// Write the finished run document to the chosen destination.
    pub fn emit(&self, manifest: &RunManifest, report: &MetricsReport) -> Result<(), String> {
        let Some(dest) = &self.metrics_json else {
            return Ok(());
        };
        let doc = manifest.to_run_document(report);
        if dest == "-" {
            println!("{doc}");
            Ok(())
        } else {
            std::fs::write(dest, format!("{doc}\n"))
                .map_err(|e| format!("--metrics-json: cannot write {dest:?}: {e}"))
        }
    }
}

/// One slot per event kind for the `--trace-sample` stride: the three
/// solver shapes, five simulator kinds, four job kinds, and the three
/// remaining variants (tail sample, heartbeat, replicate-done).
const KIND_SLOTS: usize = 15;

/// Map an event to its per-kind sampling slot. Sampling is per kind so
/// a stride never starves rare-but-load-bearing kinds (a steal success
/// among millions of completions).
fn kind_slot(ev: &Event) -> usize {
    match ev {
        Event::SolverStep { .. } => 0,
        Event::SolverSteady { .. } => 1,
        Event::SolverDone { .. } => 2,
        Event::Sim { kind, .. } => 3 + *kind as usize,
        Event::Job { kind, .. } => 8 + *kind as usize,
        Event::TailSample { .. } => 12,
        Event::Heartbeat { .. } => 13,
        Event::ReplicateDone { .. } => 14,
    }
}

/// Counts every event (feeding the metrics report), optionally tees it
/// to an NDJSON trace destination (file or stdout), and feeds the
/// flight-recorder ring when `--flight-recorder` armed it.
pub struct CliRecorder {
    counts: CountingRecorder,
    metrics_wanted: bool,
    trace: Option<NdjsonRecorder<Box<dyn Write + Send>>>,
    /// `--trace-sample` stride: the NDJSON trace keeps the 1st, then
    /// every `sample`-th event of each kind. Counters, the flight
    /// ring, and fault injection always see the full stream.
    sample: u64,
    seen: [u64; KIND_SLOTS],
    flight: bool,
    /// `LOADSTEAL_PANIC_AFTER_EVENTS` fault injection (tests only).
    panic_after: Option<u64>,
    recorded: u64,
}

impl CliRecorder {
    /// Write the trace's self-describing header line (and remember it
    /// for crash dumps when the flight recorder is armed). A no-op
    /// without `--trace` or `--flight-recorder`, so commands call it
    /// unconditionally before their first event. The `--trace-sample`
    /// stride is stamped into the header here, so commands never have
    /// to thread it through.
    pub fn write_header(&mut self, header: &loadsteal_obs::TraceHeader) {
        let mut header = header.clone();
        if self.sample > 1 {
            header.sample = Some(self.sample);
        }
        if let Some(t) = &mut self.trace {
            t.write_line(&header.to_json_line());
        }
        if self.flight {
            loadsteal_obs::flight::set_header(header.to_json_line());
        }
    }

    /// Flush the trace, surface any deferred I/O error, and return the
    /// tallies plus the number of trace lines written. When the span
    /// profiler is live, per-span summary records are appended to the
    /// trace first (`{"ev":"span",…}` — see docs/trace-schema.md).
    pub fn finish(mut self) -> Result<(EventCounts, u64), String> {
        let mut lines = 0;
        if let Some(mut t) = self.trace.take() {
            if loadsteal_obs::span::enabled() {
                for rec in loadsteal_obs::span::snapshot().to_records() {
                    t.write_line(&rec.to_json_line());
                }
            }
            lines = t.lines();
            let (_, err) = t.into_inner();
            if let Some(e) = err {
                return Err(format!("--trace: write failed: {e}"));
            }
        }
        Ok((self.counts.counts(), lines))
    }
}

impl Recorder for CliRecorder {
    fn enabled(&self) -> bool {
        self.metrics_wanted || self.trace.is_some() || self.flight
    }

    fn record(&mut self, ev: &Event) {
        self.counts.record(ev);
        if let Some(t) = &mut self.trace {
            let slot = kind_slot(ev);
            if self.seen[slot] % self.sample == 0 {
                t.record(ev);
            }
            self.seen[slot] += 1;
        }
        if self.flight {
            loadsteal_obs::flight::record(ev);
        }
        if let Some(n) = self.panic_after {
            self.recorded += 1;
            if self.recorded >= n {
                panic!("injected crash after {n} recorded events (LOADSTEAL_PANIC_AFTER_EVENTS)");
            }
        }
    }

    fn flush(&mut self) {
        if let Some(t) = &mut self.trace {
            Recorder::flush(t);
        }
    }
}

/// Routes the human-readable narrative: stdout normally, stderr when
/// stdout carries the JSON document, nowhere under `--quiet` (or
/// `LOADSTEAL_LOG=off`).
#[derive(Debug, Clone, Copy)]
pub struct Narrator {
    to_stderr: bool,
}

impl Narrator {
    /// A narrator that diverts to stderr when `json_on_stdout` is set.
    pub fn new(json_on_stdout: bool) -> Self {
        Self {
            to_stderr: json_on_stdout,
        }
    }

    /// Print one narrative line (subject to the quiet/level filter).
    pub fn say(&self, args: std::fmt::Arguments<'_>) {
        if !level_enabled(Level::Info) {
            return;
        }
        if self.to_stderr {
            eprintln!("{args}");
        } else {
            println!("{args}");
        }
    }
}

/// `println!`-style narrative line through a [`Narrator`].
macro_rules! say {
    ($n:expr, $($t:tt)*) => { $n.say(format_args!($($t)*)) };
}
pub(crate) use say;

/// Start a run manifest stamped with the crate version, the git
/// revision (when built from a checkout), and the reconstructed
/// command line.
pub fn manifest() -> RunManifest {
    let command: Vec<String> = std::env::args().skip(1).collect();
    let mut m = RunManifest::new(env!("CARGO_PKG_VERSION"), &command.join(" "));
    let rev = env!("LOADSTEAL_GIT_REV");
    if !rev.is_empty() {
        m.git = Some(rev.to_owned());
    }
    m
}
