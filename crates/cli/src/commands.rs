//! Command implementations.

use loadsteal_core::fixed_point::{solve as solve_fp, solve_traced, FixedPoint, FixedPointOptions};
use loadsteal_core::models::{MeanFieldModel, SimpleWs, StaticDrain};
use loadsteal_core::rate::{fit_power_law, geometric_grid};
use loadsteal_core::spec::{PolicySpec, ServiceSpec, SpeedSpec};
use loadsteal_core::stability::{check_l1_contraction, theorem_condition_holds};
use loadsteal_core::tail::TailVector;
use loadsteal_core::{ModelRegistry, ModelSpec, PresetTier};
use loadsteal_obs::{
    prometheus_text, EventCounts, Recorder, Registry, RegistryRecorder, SharedRecorder,
    TailReference, TraceHeader, TAIL_SAMPLE_DEPTH,
};
use loadsteal_sim::{
    replicate, replicate_recorded, EngineKind, SimConfig, StealPolicy, ToSimConfig,
    DEFAULT_HEARTBEAT_EVERY,
};
use loadsteal_trace::{
    read_bytes, transient, MeanFieldPrediction, ReadMode, Timeline, TimelineConfig,
    TransientAnalysis, TransientOptions,
};

use crate::args::Args;
use crate::obs::{manifest, say, Narrator, ObsOpts, OBS_FLAGS};

const MODEL_FLAGS: &[&str] = &[
    "model",
    "lambda",
    "threshold",
    "choices",
    "batch",
    "begin",
    "rate",
    "stages",
    "per-task",
    "fast-frac",
    "fast",
    "slow",
    "levels",
    "internal",
];

/// The pre-registry `--model` names, kept working verbatim. Each
/// translates into the equivalent [`ModelSpec`], so the legacy and
/// registry grammars share one dispatch path.
const LEGACY_MODELS: &[&str] = &[
    "simple",
    "nosteal",
    "threshold",
    "general",
    "multichoice",
    "multisteal",
    "preemptive",
    "repeated",
    "erlang",
    "transfer",
    "rebalance",
    "heterogeneous",
];

/// Translate a legacy `--model` name plus its per-knob flags into a
/// [`ModelSpec`]; `Ok(None)` when the name is not a legacy one.
fn legacy_model_spec(a: &Args, model: &str) -> Result<Option<ModelSpec>, String> {
    if !LEGACY_MODELS.contains(&model) {
        return Ok(None);
    }
    let mut spec = ModelSpec::simple_ws(a.required::<f64>("lambda")?);
    match model {
        "simple" => {}
        "nosteal" => spec.policy = PolicySpec::NoSteal,
        "threshold" => {
            spec.policy = PolicySpec::OnEmpty {
                threshold: a.get_or("threshold", 2)?,
                choices: 1,
                batch: 1,
            }
        }
        "general" => {
            spec.policy = PolicySpec::OnEmpty {
                threshold: a.get_or("threshold", 2)?,
                choices: a.get_or("choices", 1u32)?,
                batch: a.get_or("batch", 1)?,
            }
        }
        "multichoice" => {
            spec.policy = PolicySpec::OnEmpty {
                threshold: a.get_or("threshold", 2)?,
                choices: a.get_or("choices", 2u32)?,
                batch: 1,
            }
        }
        "multisteal" => {
            spec.policy = PolicySpec::OnEmpty {
                threshold: a.get_or("threshold", 4)?,
                choices: 1,
                batch: a.get_or("batch", 2)?,
            }
        }
        "preemptive" => {
            spec.policy = PolicySpec::Preemptive {
                begin_at: a.get_or("begin", 1)?,
                rel_threshold: a.get_or("threshold", 3)?,
            }
        }
        "repeated" => {
            spec.policy = PolicySpec::Repeated {
                rate: a.get_or("rate", 1.0)?,
                threshold: a.get_or("threshold", 2)?,
            }
        }
        "erlang" => {
            spec.service = ServiceSpec::Erlang {
                stages: a.get_or("stages", 10)?,
            }
        }
        "transfer" => {
            spec.policy = PolicySpec::OnEmpty {
                threshold: a.get_or("threshold", 4)?,
                choices: 1,
                batch: 1,
            };
            spec.transfer_rate = Some(a.get_or("rate", 0.25)?);
        }
        "rebalance" => {
            spec.policy = PolicySpec::Rebalance {
                rate: a.get_or("rate", 1.0)?,
                per_task: a.get_or("per-task", false)?,
            }
        }
        "heterogeneous" => {
            spec.policy = PolicySpec::OnEmpty {
                threshold: a.get_or("threshold", 2)?,
                choices: 1,
                batch: 1,
            };
            spec.speeds = SpeedSpec::TwoClass {
                fast_fraction: a.get_or("fast-frac", 0.5)?,
                fast_rate: a.get_or("fast", 1.5)?,
                slow_rate: a.get_or("slow", 0.8)?,
            };
        }
        _ => unreachable!("LEGACY_MODELS and this match list the same names"),
    }
    Ok(Some(spec))
}

/// Resolve `--model` (default `default`) into a [`ModelSpec`]: legacy
/// names first, then the shared `<preset|key=val,...>` grammar with
/// `--lambda` appended as an override (last key wins).
fn model_spec(a: &Args, default: &str) -> Result<ModelSpec, String> {
    let model = a.raw("model").unwrap_or(default);
    if let Some(spec) = legacy_model_spec(a, model)? {
        return Ok(spec);
    }
    let mut text = model.to_owned();
    if let Some(l) = a.get::<f64>("lambda")? {
        text.push_str(&format!(",lambda={l}"));
    }
    ModelSpec::parse(&text)
}

/// Add the solver counters common to every traced command.
fn solver_metrics(reg: &Registry, c: &EventCounts) {
    reg.counter("solver.steps_accepted").add(c.solver_accepted);
    reg.counter("solver.steps_rejected").add(c.solver_rejected);
    reg.counter("solver.steady_samples").add(c.solver_steady);
    reg.counter("solver.integrations").add(c.solver_done);
    reg.gauge("solver.max_reject_streak")
        .set(c.solver_max_reject_streak as f64);
    reg.gauge("solver.stiffness_hint")
        .set(if c.solver_max_reject_streak >= 5 {
            1.0
        } else {
            0.0
        });
}

/// `loadsteal solve` — fixed point metrics.
pub fn solve(a: &Args) -> Result<(), String> {
    let mut known = MODEL_FLAGS.to_vec();
    known.extend_from_slice(OBS_FLAGS);
    a.ensure_known(&known)?;
    let obs = ObsOpts::from_args(a)?;
    let out = Narrator::new(obs.machine_stdout());
    let spec = model_spec(a, "simple")?;
    let canonical = spec.to_string();
    let mut rec = obs.recorder()?;
    rec.write_header(&TraceHeader {
        model: Some(canonical.clone()),
        ..TraceHeader::default()
    });
    let model = spec.mean_field().map_err(|e| e.to_string())?;
    let name = model.name();
    let fp =
        solve_traced(&model, &FixedPointOptions::default(), &mut rec).map_err(|e| e.to_string())?;
    let (counts, trace_lines) = rec.finish()?;
    say!(out, "model:                 {name}");
    say!(out, "truncation levels:     {}", fp.truncation);
    say!(
        out,
        "residual ‖F(π)‖∞:      {:.3e}{}",
        fp.residual,
        if fp.polished {
            " (Newton-polished)"
        } else {
            " (integration only)"
        }
    );
    say!(
        out,
        "busy fraction s₁:      {:.6}",
        fp.task_tails.get(1).copied().unwrap_or(0.0)
    );
    say!(out, "mean tasks / proc L:   {:.6}", fp.mean_tasks);
    say!(out, "mean time in system W: {:.6}", fp.mean_time_in_system);
    if let Some(r) = fp.tail_ratio() {
        say!(out, "tail decay ratio:      {r:.6}");
    }
    if obs.metrics_json.is_some() {
        let reg = Registry::new();
        solver_metrics(&reg, &counts);
        reg.gauge("solver.residual").set(fp.residual);
        reg.gauge("solver.truncation").set(fp.truncation as f64);
        reg.gauge("solver.mean_tasks").set(fp.mean_tasks);
        reg.gauge("solver.mean_time_in_system")
            .set(fp.mean_time_in_system);
        if trace_lines > 0 {
            reg.counter("trace.lines").add(trace_lines);
        }
        export_spans(&reg);
        let mut m = manifest();
        m.config("model", canonical.as_str())
            .config("lambda", spec.lambda);
        obs.emit(&m, &reg.snapshot())?;
    }
    Ok(())
}

/// `loadsteal tails` — fixed point occupancy tails.
pub fn tails(a: &Args) -> Result<(), String> {
    a.ensure_known(MODEL_FLAGS)?;
    let levels: usize = a.get_or("levels", 12)?;
    let spec = model_spec(a, "simple")?;
    let model = spec.mean_field().map_err(|e| e.to_string())?;
    let name = model.name();
    let fp = solve_fp(&model, &FixedPointOptions::default()).map_err(|e| e.to_string())?;
    println!("model: {name}");
    println!("{:>4} {:>14}", "i", "s_i");
    for i in 0..=levels {
        println!(
            "{i:>4} {:>14.8}",
            fp.task_tails.get(i).copied().unwrap_or(0.0)
        );
    }
    Ok(())
}

const SIM_FLAGS: &[&str] = &[
    "n",
    "model",
    "lambda",
    "policy",
    "threshold",
    "choices",
    "batch",
    "begin",
    "rate",
    "transfer-rate",
    "runs",
    "horizon",
    "warmup",
    "seed",
    "internal",
    "service-stages",
    "constant-service",
    "heartbeat-every",
    "sample-tails",
    "engine",
];

/// Solve the mean-field companion of a simulated spec, feeding the
/// solver's convergence trace into `rec`, so a simulation's metrics
/// report carries solver counters next to the simulator's. Specs with
/// no mean-field model and convergence failures (e.g. an unstable λ)
/// are not fatal: the companion is simply reported as unavailable.
fn companion_fixed_point(spec: &ModelSpec, rec: &mut dyn Recorder) -> Option<(String, FixedPoint)> {
    let model = match spec.mean_field() {
        Ok(m) => m,
        Err(e) => {
            loadsteal_obs::debug!("mean-field companion unavailable: {e}");
            return None;
        }
    };
    let name = model.name();
    match solve_traced(&model, &FixedPointOptions::default(), rec) {
        Ok(fp) => Some((name, fp)),
        Err(e) => {
            loadsteal_obs::debug!("mean-field companion did not converge: {e}");
            None
        }
    }
}

/// Flags that parameterize the legacy `--policy` path and therefore
/// conflict with `--model` (whose spec already fixes those knobs).
const LEGACY_SIM_FLAGS: &[&str] = &[
    "policy",
    "threshold",
    "choices",
    "batch",
    "begin",
    "rate",
    "transfer-rate",
    "service-stages",
    "constant-service",
];

/// Resolve what system `simulate`/`serve` runs: the `--model` spec
/// grammar when given (rejecting the legacy per-knob flags), otherwise
/// the legacy `--policy` flag family translated into a spec.
fn simulate_spec(a: &Args) -> Result<ModelSpec, String> {
    if let Some(model) = a.raw("model") {
        if let Some(conflict) = LEGACY_SIM_FLAGS.iter().find(|f| a.raw(f).is_some()) {
            return Err(format!(
                "--model and --{conflict} conflict; fold the parameter into the spec \
                 (e.g. --model \"{model},T=4\")"
            ));
        }
        let mut text = model.to_owned();
        if let Some(l) = a.get::<f64>("lambda")? {
            text.push_str(&format!(",lambda={l}"));
        }
        return ModelSpec::parse(&text);
    }
    let mut spec = ModelSpec::simple_ws(a.required::<f64>("lambda")?);
    spec.policy = match a.raw("policy").unwrap_or("simple") {
        "none" => PolicySpec::NoSteal,
        "simple" => PolicySpec::OnEmpty {
            threshold: 2,
            choices: 1,
            batch: 1,
        },
        "threshold" => PolicySpec::OnEmpty {
            threshold: a.get_or("threshold", 2)?,
            choices: a.get_or("choices", 1u32)?,
            batch: a.get_or("batch", 1)?,
        },
        "preemptive" => PolicySpec::Preemptive {
            begin_at: a.get_or("begin", 1)?,
            rel_threshold: a.get_or("threshold", 3)?,
        },
        "repeated" => PolicySpec::Repeated {
            rate: a.get_or("rate", 1.0)?,
            threshold: a.get_or("threshold", 2)?,
        },
        "rebalance" => PolicySpec::Rebalance {
            rate: a.get_or("rate", 1.0)?,
            per_task: false,
        },
        other => return Err(format!("unknown policy {other:?}")),
    };
    if a.get_or("constant-service", false)? {
        spec.service = ServiceSpec::Deterministic;
    } else if let Some(stages) = a.get::<u32>("service-stages")? {
        spec.service = ServiceSpec::Erlang { stages };
    }
    spec.transfer_rate = a.get::<f64>("transfer-rate")?;
    Ok(spec)
}

/// Build a [`SimConfig`] for `spec` with the run-shape flags (horizon,
/// warmup, internal arrivals, heartbeat cadence) applied on top. `--n`
/// defaults to 128, the paper's largest simulated system.
fn sim_config(a: &Args, spec: &ModelSpec) -> Result<SimConfig, String> {
    let n: usize = a.get_or("n", 128)?;
    let mut cfg = spec.sim_config(n).map_err(|e| e.to_string())?;
    cfg.horizon = a.get_or("horizon", 20_000.0)?;
    cfg.warmup = a.get_or("warmup", cfg.horizon / 10.0)?;
    cfg.internal_lambda = a.get_or("internal", 0.0)?;
    cfg.heartbeat_every = a.get_or("heartbeat-every", DEFAULT_HEARTBEAT_EVERY)?;
    cfg.sample_tails = a.get::<f64>("sample-tails")?;
    if let Some(engine) = a.raw("engine") {
        cfg.engine = EngineKind::parse(engine)?;
    }
    cfg.validate().map_err(|e| e.to_string())?;
    Ok(cfg)
}

/// `loadsteal simulate` — run the discrete-event simulator.
pub fn simulate(a: &Args) -> Result<(), String> {
    let mut known = SIM_FLAGS.to_vec();
    known.extend_from_slice(OBS_FLAGS);
    a.ensure_known(&known)?;
    let spec = simulate_spec(a)?;
    let canonical = spec.to_string();
    let mut cfg = sim_config(a, &spec)?;
    let n = cfg.n;
    let lambda = cfg.lambda;
    let runs: usize = a.get_or("runs", 3)?;
    let seed: u64 = a.get_or("seed", 42)?;

    let obs = ObsOpts::from_args(a)?;
    // Collect sojourn quantiles whenever the metrics document will be
    // written; the digest stays off otherwise so the hot loop pays
    // nothing for it.
    cfg.sojourn_digest = obs.metrics_json.is_some();
    // Per-job lifecycle events are opt-in: the engine only emits them
    // when a recorder is attached AND this flag is set, so plain runs
    // pay nothing.
    cfg.trace_jobs = a.switch("trace-jobs");
    let out = Narrator::new(obs.machine_stdout());
    let mut rec = obs.recorder()?;
    rec.write_header(&TraceHeader {
        model: Some(canonical.clone()),
        n: Some(n as u64),
        seed: Some(seed),
        runs: Some(runs as u64),
        ..TraceHeader::default()
    });
    let observing = rec.enabled();

    let mean_field = if observing {
        companion_fixed_point(&spec, &mut rec)
    } else {
        None
    };

    let shared = SharedRecorder::new(rec);
    let result = replicate_recorded(&cfg, runs, seed, &shared);
    let rec = shared
        .try_into_inner()
        .expect("replication worker handles are released");
    let (counts, trace_lines) = rec.finish()?;

    let ci = result.sojourn_ci();
    say!(
        out,
        "config:              n = {n}, λ = {lambda}, policy = {:?}",
        cfg.policy
    );
    say!(
        out,
        "protocol:            {runs} × {:.0} s (warmup {:.0} s), seed {seed}",
        cfg.horizon,
        cfg.warmup
    );
    say!(
        out,
        "mean time in system: {:.4} ± {:.4} (95% CI over runs)",
        ci.mean,
        ci.half_width
    );
    if let Some((mname, fp)) = &mean_field {
        say!(
            out,
            "mean-field W (n→∞):  {:.4} ({mname})",
            fp.mean_time_in_system
        );
    }
    let r0 = &result.runs[0];
    say!(
        out,
        "per run ≈ {} tasks, steal success rate {:.1}%",
        r0.tasks_completed,
        100.0 * r0.steal_success_rate()
    );
    let tails = result.mean_load_tails();
    let mut tail_line = String::from("tails s₁..s₈:        ");
    for i in 1..=8 {
        tail_line.push_str(&format!("{:.4} ", tails.get(i).copied().unwrap_or(0.0)));
    }
    say!(out, "{}", tail_line.trim_end());

    if obs.metrics_json.is_some() {
        let reg = Registry::new();
        reg.counter("sim.arrivals").add(counts.arrivals);
        reg.counter("sim.completions").add(counts.completions);
        reg.counter("sim.steal_attempts").add(counts.steal_attempts);
        reg.counter("sim.steal_successes")
            .add(counts.steal_successes);
        reg.counter("sim.migrations").add(counts.migrations);
        reg.counter("sim.tasks_migrated").add(counts.tasks_migrated);
        reg.counter("sim.heartbeats").add(counts.heartbeats);
        reg.counter("sim.replicates").add(counts.replicates);
        if counts.job_events > 0 {
            reg.counter("job.events").add(counts.job_events);
        }
        if counts.tail_samples > 0 {
            reg.counter("sim.tail_samples").add(counts.tail_samples);
        }
        let (mut events, mut attempts, mut successes) = (0u64, 0u64, 0u64);
        let wall_hist = reg.histogram("sim.run_wall_ms");
        let ev_hist = reg.histogram("sim.run_events");
        for r in &result.runs {
            events += r.events_processed;
            attempts += r.steal_attempts;
            successes += r.steal_successes;
            wall_hist.record(r.wall_ms.round() as u64);
            ev_hist.record(r.events_processed);
        }
        reg.counter("sim.events").add(events);
        // Streaming sojourn-time quantiles, merged across runs.
        if let Some(d) = result.merged_sojourn_digest() {
            reg.sketch("sim.sojourn_time").merge_from(&d);
        }
        reg.gauge("sim.mean_sojourn").set(ci.mean);
        reg.gauge("sim.sojourn_ci_half_width").set(ci.half_width);
        reg.gauge("sim.steal_success_rate").set(if attempts == 0 {
            0.0
        } else {
            successes as f64 / attempts as f64
        });
        solver_metrics(&reg, &counts);
        if let Some((_, fp)) = &mean_field {
            reg.gauge("solver.residual").set(fp.residual);
            reg.gauge("solver.mean_time_in_system")
                .set(fp.mean_time_in_system);
        }
        if trace_lines > 0 {
            reg.counter("trace.lines").add(trace_lines);
        }
        export_spans(&reg);
        let mut m = manifest();
        m.seed = Some(seed);
        m.config("n", n)
            .config("lambda", lambda)
            .config("model", canonical.as_str())
            .config("runs", runs)
            .config("horizon", cfg.horizon)
            .config("warmup", cfg.warmup);
        if let Some((mname, _)) = &mean_field {
            m.config("mean_field_model", mname.as_str());
        }
        obs.emit(&m, &reg.snapshot())?;
    }
    Ok(())
}

/// Flags accepted by `loadsteal converge` (the sim-flag family minus
/// the per-run shape flags it owns, plus the grid bounds).
const CONVERGE_FLAGS: &[&str] = &[
    "model",
    "lambda",
    "policy",
    "threshold",
    "choices",
    "batch",
    "begin",
    "rate",
    "transfer-rate",
    "service-stages",
    "constant-service",
    "n-min",
    "n-max",
    "runs",
    "horizon",
    "warmup",
    "seed",
    "engine",
];

/// `loadsteal converge` — measure the finite-size convergence rate.
///
/// Sweeps the system size over a geometric grid, estimates the
/// stationary tails at each size, and fits the decay exponent of
/// `e(n) = max_{i∈2..4} |ŝᵢ(n) − sᵢ|` against the mean-field fixed
/// point. Ying's refinement of the Kurtz limit puts the stationary
/// error at Θ(1/n), so the fitted slope should sit near −1; an O(1)
/// model-transcription bias flattens it towards 0 instead. `s₁` is
/// excluded from the error: the busy fraction equals λ by work
/// conservation at every n, so it carries no finite-size signal.
pub fn converge(a: &Args) -> Result<(), String> {
    let mut known = CONVERGE_FLAGS.to_vec();
    known.extend_from_slice(OBS_FLAGS);
    a.ensure_known(&known)?;
    let spec = simulate_spec(a)?;
    let canonical = spec.to_string();
    let n_min: usize = a.get_or("n-min", 128)?;
    let n_max: usize = a.get_or("n-max", 2_048)?;
    if n_min < 2 {
        return Err("--n-min must be at least 2".into());
    }
    let runs: usize = a.get_or("runs", 3)?;
    let horizon: f64 = a.get_or("horizon", 4_000.0)?;
    let warmup: f64 = a.get_or("warmup", horizon / 10.0)?;
    let seed: u64 = a.get_or("seed", 42)?;
    let grid = geometric_grid(n_min, n_max);
    if grid.len() < 2 {
        return Err(format!(
            "grid {grid:?} has fewer than two sizes; raise --n-max above 2×--n-min"
        ));
    }

    let obs = ObsOpts::from_args(a)?;
    let out = Narrator::new(obs.machine_stdout());
    let fp = spec.fixed_point()?;
    say!(out, "model:    {canonical}");
    say!(
        out,
        "protocol: n ∈ {grid:?}, {runs} × {horizon:.0} s (warmup {warmup:.0} s), seed {seed}"
    );

    // The error is the sup over s₂..s₄ — deep enough to see the tail
    // structure, shallow enough that every grid point estimates it
    // with usable variance at CI horizons.
    const LEVELS: std::ops::RangeInclusive<usize> = 2..=4;
    let mut points: Vec<(f64, f64)> = Vec::with_capacity(grid.len());
    for &n in &grid {
        let mut cfg = spec.sim_config(n).map_err(|e| e.to_string())?;
        cfg.horizon = horizon;
        cfg.warmup = warmup;
        if let Some(engine) = a.raw("engine") {
            cfg.engine = EngineKind::parse(engine)?;
        }
        cfg.validate().map_err(|e| e.to_string())?;
        let result = replicate(&cfg, runs, seed);
        let tails = result.mean_load_tails();
        let err = LEVELS
            .map(|i| {
                let sim = tails.get(i).copied().unwrap_or(0.0);
                let fp_i = fp.task_tails.get(i).copied().unwrap_or(0.0);
                (sim - fp_i).abs()
            })
            .fold(0.0f64, f64::max);
        say!(out, "  n = {n:>7}: e(n) = {err:.3e}");
        points.push((n as f64, err));
    }

    let fit = fit_power_law(&points).ok_or("could not fit a slope (degenerate or zero errors)")?;
    // The grep-able verdict line, also the CI smoke target.
    println!(
        "convergence slope: {:.3} (R² {:.3}, {} sizes, target −1 for Θ(1/n))",
        fit.slope,
        fit.r_squared,
        points.len()
    );

    if obs.metrics_json.is_some() {
        let reg = Registry::new();
        reg.gauge("converge.slope").set(fit.slope);
        reg.gauge("converge.r_squared").set(fit.r_squared);
        reg.gauge("converge.sizes").set(points.len() as f64);
        for (n, e) in &points {
            reg.gauge(&format!("converge.err_n{}", *n as usize)).set(*e);
        }
        let mut m = manifest();
        m.seed = Some(seed);
        m.config("model", canonical.as_str())
            .config("n_min", n_min)
            .config("n_max", n_max)
            .config("runs", runs)
            .config("horizon", horizon)
            .config("warmup", warmup);
        obs.emit(&m, &reg.snapshot())?;
    }
    Ok(())
}

/// `loadsteal stability` — Section 4 contraction check.
pub fn stability(a: &Args) -> Result<(), String> {
    a.ensure_known(&["lambda", "t-max"])?;
    let lambda: f64 = a.required("lambda")?;
    let t_max: f64 = a.get_or("t-max", 50_000.0)?;
    let m = SimpleWs::new(lambda)?;
    let fp = solve_fp(&m, &FixedPointOptions::default()).map_err(|e| e.to_string())?;
    println!(
        "Theorem 1 hypothesis π₂ < 1/2: {} (π₂ = {:.4})",
        if theorem_condition_holds(lambda) {
            "holds"
        } else {
            "does NOT hold"
        },
        m.pi2()
    );
    for (name, start) in [
        ("empty", m.empty_state()),
        (
            "uniform load 4",
            TailVector::uniform_load(4, m.truncation()).into_vec(),
        ),
        (
            "geometric 0.97",
            TailVector::geometric(0.97, m.truncation()).into_vec(),
        ),
    ] {
        let rep =
            check_l1_contraction(&m, &start, &fp.state, 1e-6, t_max).map_err(|e| e.to_string())?;
        println!(
            "start {name:>16}: D₀ = {:.4}, max increase {:.2e}, converged at {}, decay γ ≈ {}",
            rep.initial_distance,
            rep.max_increase,
            rep.converged_at
                .map(|t| format!("t = {t:.1}"))
                .unwrap_or_else(|| "— (not within horizon)".into()),
            rep.decay_rate()
                .map(|g| format!("{g:.4}"))
                .unwrap_or_else(|| "—".into()),
        );
    }
    Ok(())
}

/// `loadsteal drain` — static system drain comparison.
pub fn drain(a: &Args) -> Result<(), String> {
    a.ensure_known(&["initial", "n", "internal", "runs", "seed"])?;
    let initial: usize = a.required("initial")?;
    let n: usize = a.get_or("n", 128)?;
    let internal: f64 = a.get_or("internal", 0.0)?;
    let model = StaticDrain::new(0.0, internal, 4 * initial + 16)?;
    let predicted = model
        .drain_time(initial, 1e-3, 1e6)
        .map_err(|e| e.to_string())?;
    println!("mean-field drain time (n → ∞): {predicted:.2}");

    let mut cfg = SimConfig::paper_default(n, 0.0);
    cfg.lambda = 0.0;
    cfg.internal_lambda = internal;
    cfg.run_until_drained = true;
    cfg.initial_load = initial;
    cfg.warmup = 0.0;
    cfg.policy = StealPolicy::Repeated {
        rate: 8.0,
        threshold: 2,
    };
    let runs: usize = a.get_or("runs", 5)?;
    let seed: u64 = a.get_or("seed", 42)?;
    let result = replicate(&cfg, runs, seed);
    println!(
        "simulated makespan (n = {n}, {runs} runs): {:.2} ± {:.2}",
        result.makespan_mean.mean(),
        result.makespan_mean.confidence_interval(0.95).half_width
    );
    Ok(())
}

/// `loadsteal stealbench` — drive the *real* work-stealing thread pool
/// with the paper's workload and report what it measurably did.
///
/// Each pool worker plays one processor: an open-loop driver submits a
/// Poisson(λ) task stream to every worker's inbox, tasks occupy their
/// worker for an Exp(1) service time (scaled by τ wall seconds per
/// model time unit), and idle workers probe one random victim per
/// transition-to-empty — the paper's steal rule. With `--trace` the
/// pool emits the same `loadsteal.trace.v1` events as the simulator,
/// so `loadsteal report` and the verify harness consume measured
/// executor traces unchanged.
pub fn stealbench(a: &Args) -> Result<(), String> {
    use std::sync::Arc;

    let mut known = vec!["workers", "lambda", "horizon", "tau-ms", "seed"];
    known.extend_from_slice(OBS_FLAGS);
    a.ensure_known(&known)?;
    let cfg = loadsteal_exec::stealbench::StealBenchConfig {
        workers: a.get_or("workers", 16)?,
        lambda: a.get_or("lambda", 0.9)?,
        horizon: a.get_or("horizon", 400.0)?,
        tau: a.get_or::<f64>("tau-ms", 4.0)? / 1_000.0,
        seed: a.get_or("seed", 42)?,
    };
    cfg.validate()?;
    let spec = ModelSpec::simple_ws(cfg.lambda);
    let canonical = spec.to_string();

    let obs = ObsOpts::from_args(a)?;
    let out = Narrator::new(obs.machine_stdout());
    let mut rec = obs.recorder()?;
    // The header carries the canonical model spec, so a downstream
    // `loadsteal report` resolves the mean-field comparison without
    // being told the model again.
    rec.write_header(&TraceHeader {
        model: Some(canonical.clone()),
        n: Some(cfg.workers as u64),
        seed: Some(cfg.seed),
        runs: Some(1),
        ..TraceHeader::default()
    });

    say!(
        out,
        "pool:     {} workers, one steal probe per transition-to-empty, seed {}",
        cfg.workers,
        cfg.seed
    );
    say!(
        out,
        "workload: λ = {} per worker, horizon {} model units, τ = {} ms ({:.1} s wall)",
        cfg.lambda,
        cfg.horizon,
        cfg.tau * 1_000.0,
        cfg.horizon * cfg.tau
    );

    // Sharded trace path (the default): each worker appends into its
    // own shard, the driver into shard `workers`, and the merge on
    // drain restores one globally t-ordered stream. No global sink
    // lock is taken per event — see docs/telemetry.md.
    let sink = Arc::new(loadsteal_obs::ShardedRecorder::with_shards(
        rec,
        cfg.workers + 1,
    ));
    let bench = loadsteal_exec::stealbench::StealBench::new_sharded(
        &cfg,
        Arc::clone(&sink) as Arc<dyn loadsteal_obs::ShardSink>,
    )?;
    bench.drive();
    let (outcome, per_worker) = bench.finish_detailed();
    // The pool joined its workers at shutdown, so ours is the last
    // reference to the recorder.
    let rec = Arc::try_unwrap(sink)
        .map_err(|_| "recorder still shared after pool shutdown".to_string())?
        .finish();
    let (counts, trace_lines) = rec.finish()?;

    let measured_rate = outcome.steal_success_rate();
    let pi2 = spec
        .fixed_point()
        .ok()
        .and_then(|fp| fp.task_tails.get(2).copied());
    say!(
        out,
        "driven:   {} tasks submitted, {} completed, {:.2} s wall (sleep overshoot {:.0} µs)",
        outcome.submitted,
        outcome.completed,
        outcome.wall_secs,
        outcome.sleep_overshoot * 1e6
    );
    match pi2 {
        Some(pi2) => say!(
            out,
            "steals:   {} probes, {} hits — success rate {:.4} measured vs π₂ = {pi2:.4} predicted",
            outcome.stats.steal_attempts,
            outcome.stats.steal_successes,
            measured_rate
        ),
        None => say!(
            out,
            "steals:   {} probes, {} hits — success rate {:.4}",
            outcome.stats.steal_attempts,
            outcome.stats.steal_successes,
            measured_rate
        ),
    }
    if outcome.stats.panics > 0 {
        say!(
            out,
            "warning:  {} task panic(s) isolated",
            outcome.stats.panics
        );
    }

    if obs.metrics_json.is_some() {
        let reg = Registry::new();
        reg.counter("exec.submitted").add(outcome.submitted);
        reg.counter("exec.completed").add(outcome.completed);
        reg.counter("exec.steal_attempts")
            .add(outcome.stats.steal_attempts);
        reg.counter("exec.steal_successes")
            .add(outcome.stats.steal_successes);
        reg.counter("exec.panics").add(outcome.stats.panics);
        reg.counter("exec.trace_events").add(
            counts.arrivals
                + counts.completions
                + counts.steal_attempts
                + counts.steal_successes
                + counts.migrations,
        );
        reg.gauge("exec.steal_success_rate").set(measured_rate);
        if let Some(pi2) = pi2 {
            reg.gauge("exec.predicted_pi2").set(pi2);
        }
        reg.gauge("exec.wall_secs").set(outcome.wall_secs);
        reg.gauge("exec.sleep_overshoot_us")
            .set(outcome.sleep_overshoot * 1e6);
        export_worker_gauges(&reg, &per_worker);
        if trace_lines > 0 {
            reg.counter("trace.lines").add(trace_lines);
        }
        export_spans(&reg);
        let mut m = manifest();
        m.seed = Some(cfg.seed);
        m.config("workers", cfg.workers)
            .config("lambda", cfg.lambda)
            .config("model", canonical.as_str())
            .config("horizon", cfg.horizon)
            .config("tau", cfg.tau);
        obs.emit(&m, &reg.snapshot())?;
    }
    Ok(())
}

/// `loadsteal report <trace.ndjson>` — reconstruct a timeline from a
/// trace and compare it against the mean-field prediction.
pub fn report(a: &Args) -> Result<(), String> {
    a.ensure_known(&["warmup", "lambda", "model", "input"])?;
    let path = a.positional(0).or_else(|| a.raw("input")).ok_or(
        "usage: loadsteal report <trace.ndjson|-> [--lossy] [--warmup T] [--model M] [--lambda λ]",
    )?;
    if a.positional(1).is_some() {
        return Err("report takes exactly one trace file".into());
    }
    // Raw bytes, not read_to_string: a trace with one corrupt region
    // should still be reportable under --lossy, with the bad lines
    // diagnosed individually instead of the whole file rejected. `-`
    // reads stdin so the command pipes directly from
    // `simulate --trace -` or `stealbench --trace -`.
    let bytes = if path == "-" {
        use std::io::Read as _;
        let mut buf = Vec::new();
        std::io::stdin()
            .read_to_end(&mut buf)
            .map_err(|e| format!("cannot read stdin: {e}"))?;
        buf
    } else {
        std::fs::read(path).map_err(|e| format!("cannot read trace {path:?}: {e}"))?
    };
    let mode = if a.switch("lossy") {
        ReadMode::Lossy
    } else {
        ReadMode::Strict
    };
    let parsed = read_bytes(&bytes, mode).map_err(|e| format!("{path}: {e} (try --lossy)"))?;
    if !parsed.skipped.is_empty() {
        eprintln!(
            "warning: skipped {} of {} lines (first: {})",
            parsed.skipped.len(),
            parsed.lines,
            parsed.skipped[0]
        );
    }
    let warmup: f64 = a.get_or("warmup", 0.0)?;
    let tl = Timeline::build(
        &parsed.events,
        &TimelineConfig {
            warmup,
            ..TimelineConfig::default()
        },
    );

    // Mean-field comparison. The model resolves in precedence order:
    // an explicit --model spec, then --lambda (re-pinning the trace
    // header's model, or the paper's basic model without one), then the
    // trace's self-describing header verbatim, and finally the basic
    // model at the measured arrival rate. A spec with no mean-field
    // equations or an unstable rate simply drops the prediction columns.
    let header_spec = parsed
        .header
        .as_ref()
        .and_then(|h| h.model.as_deref())
        .and_then(|m| match ModelSpec::parse(m) {
            Ok(s) => Some(s),
            Err(e) => {
                eprintln!("warning: ignoring unparseable trace-header model: {e}");
                None
            }
        });
    let spec = match a.raw("model") {
        Some(model) => {
            let mut text = model.to_owned();
            if let Some(l) = a.get::<f64>("lambda")? {
                text.push_str(&format!(",lambda={l}"));
            }
            Some(ModelSpec::parse(&text)?)
        }
        None => match a.get::<f64>("lambda")? {
            Some(l) => Some(match header_spec {
                Some(s) => s.with_lambda(l),
                None => ModelSpec::simple_ws(l),
            }),
            None => header_spec.or_else(|| {
                let l = tl.arrival_rate();
                (l > 0.0 && l < 1.0).then(|| ModelSpec::simple_ws(l))
            }),
        },
    };
    let pred = spec.and_then(|s| {
        let fp = s.fixed_point().ok()?;
        let pi2 = fp.task_tails.get(2).copied().unwrap_or(0.0);
        Some(MeanFieldPrediction::new(
            s.lambda,
            pi2,
            fp.mean_time_in_system,
        ))
    });
    print!("{}", loadsteal_trace::render_report(&tl, pred.as_ref()));
    Ok(())
}

/// `loadsteal jobs <trace.ndjson|->` — reconstruct per-job causal
/// timelines from a `--trace-jobs` trace and print the sojourn
/// decomposition, migrated-vs-local comparison, and chain statistics.
pub fn jobs(a: &Args) -> Result<(), String> {
    a.ensure_known(&["warmup", "input"])?;
    let path = a
        .positional(0)
        .or_else(|| a.raw("input"))
        .ok_or("usage: loadsteal jobs <trace.ndjson|-> [--lossy] [--warmup T]")?;
    if a.positional(1).is_some() {
        return Err("jobs takes exactly one trace file".into());
    }
    // `-` reads stdin so the command composes with
    // `simulate --trace-jobs --trace -` in a single pipe.
    let bytes = if path == "-" {
        use std::io::Read as _;
        let mut buf = Vec::new();
        std::io::stdin()
            .read_to_end(&mut buf)
            .map_err(|e| format!("cannot read stdin: {e}"))?;
        buf
    } else {
        std::fs::read(path).map_err(|e| format!("cannot read trace {path:?}: {e}"))?
    };
    let mode = if a.switch("lossy") {
        ReadMode::Lossy
    } else {
        ReadMode::Strict
    };
    let parsed = read_bytes(&bytes, mode).map_err(|e| format!("{path}: {e} (try --lossy)"))?;
    if !parsed.skipped.is_empty() {
        eprintln!(
            "warning: skipped {} of {} lines (first: {})",
            parsed.skipped.len(),
            parsed.lines,
            parsed.skipped[0]
        );
    }
    let warmup: f64 = a.get_or("warmup", 0.0)?;
    let analysis = loadsteal_trace::JobAnalysis::build(&parsed.events, warmup);
    if analysis.arrived == 0 {
        eprintln!(
            "warning: trace contains no job_* events — was the run started with --trace-jobs?"
        );
    }
    print!("{}", loadsteal_trace::render_jobs(&analysis));
    Ok(())
}

/// First `TAIL_SAMPLE_DEPTH` tail levels of an `s₀`-based tail vector
/// (`row[0] = s₀ = 1`), zero-padded — the fixed-width layout the
/// tail-sample machinery uses.
fn tails8(row: &[f64]) -> [f64; TAIL_SAMPLE_DEPTH] {
    let mut out = [0.0f64; TAIL_SAMPLE_DEPTH];
    for (i, slot) in out.iter_mut().enumerate() {
        *slot = row.get(i + 1).copied().unwrap_or(0.0);
    }
    out
}

/// `loadsteal transient <trace.ndjson|->` — replay the `tail_sample`
/// stream of a `--sample-tails` trace against the mean-field ODE
/// trajectory integrated on the same grid: per-time residuals,
/// sup-norm deviation, empirical relaxation time, and drift events
/// outside the CI envelope.
pub fn transient(a: &Args) -> Result<(), String> {
    a.ensure_known(&[
        "input",
        "model",
        "lambda",
        "n",
        "depth",
        "epsilon",
        "metrics-json",
    ])?;
    let path = a.positional(0).or_else(|| a.raw("input")).ok_or(
        "usage: loadsteal transient <trace.ndjson|-> [--lossy] [--model M] [--lambda λ] \
         [--n N] [--depth K] [--epsilon ε]",
    )?;
    if a.positional(1).is_some() {
        return Err("transient takes exactly one trace file".into());
    }
    let bytes = if path == "-" {
        use std::io::Read as _;
        let mut buf = Vec::new();
        std::io::stdin()
            .read_to_end(&mut buf)
            .map_err(|e| format!("cannot read stdin: {e}"))?;
        buf
    } else {
        std::fs::read(path).map_err(|e| format!("cannot read trace {path:?}: {e}"))?
    };
    let mode = if a.switch("lossy") {
        ReadMode::Lossy
    } else {
        ReadMode::Strict
    };
    let parsed = read_bytes(&bytes, mode).map_err(|e| format!("{path}: {e} (try --lossy)"))?;
    if !parsed.skipped.is_empty() {
        eprintln!(
            "warning: skipped {} of {} lines (first: {})",
            parsed.skipped.len(),
            parsed.lines,
            parsed.skipped[0]
        );
    }

    let groups = transient::group_by_time(&transient::extract_samples(&parsed.events));
    let Some((dt, t_end)) = transient::grid_of(&groups) else {
        println!("no tail samples in trace (run simulate with --sample-tails <dt>)");
        return Ok(());
    };

    // Model resolution mirrors `report`: --model, then --lambda
    // re-pinning the header spec, then the header verbatim. Unlike
    // `report` there is no measured-rate fallback to fall back on —
    // the ODE side *is* the analysis, so an unresolvable model is an
    // error rather than a dropped column.
    let header_spec = parsed
        .header
        .as_ref()
        .and_then(|h| h.model.as_deref())
        .and_then(|m| match ModelSpec::parse(m) {
            Ok(s) => Some(s),
            Err(e) => {
                eprintln!("warning: ignoring unparseable trace-header model: {e}");
                None
            }
        });
    let spec = match a.raw("model") {
        Some(model) => {
            let mut text = model.to_owned();
            if let Some(l) = a.get::<f64>("lambda")? {
                text.push_str(&format!(",lambda={l}"));
            }
            ModelSpec::parse(&text)?
        }
        None => match a.get::<f64>("lambda")? {
            Some(l) => match header_spec {
                Some(s) => s.with_lambda(l),
                None => ModelSpec::simple_ws(l),
            },
            None => header_spec
                .ok_or("trace header carries no model; pass --model <spec> (or --lambda λ)")?,
        },
    };

    let model = spec
        .mean_field()
        .map_err(|e| format!("spec has no mean-field equations: {e}"))?;
    // Integrate past the last sample so float drift on the grid never
    // drops it; matching is by instant, so the extra headroom is inert.
    let ode = loadsteal_core::trajectory::sample_tails(
        &model,
        &model.empty_state(),
        t_end + 0.5 * dt,
        dt,
    )
    .map_err(|e| format!("ODE integration failed: {e}"))?;
    let fixed_point = spec.fixed_point().ok().map(|fp| fp.task_tails);

    let n: usize = match a.get::<usize>("n")? {
        Some(n) => n,
        None => parsed
            .header
            .as_ref()
            .and_then(|h| h.n)
            .map(|n| n as usize)
            .unwrap_or_else(|| {
                eprintln!("warning: trace header carries no n; envelope assumes --n 128");
                128
            }),
    };
    let mut opts = TransientOptions::new(n);
    opts.depth = a.get_or("depth", 0usize)?;
    opts.epsilon = a.get_or("epsilon", 0.02)?;
    let analysis = TransientAnalysis::from_groups(&groups, &ode, fixed_point.as_deref(), &opts);
    // Same split as `simulate --metrics-json -`: when the document goes
    // to stdout, the human narrative moves to stderr.
    if a.raw("metrics-json") == Some("-") {
        eprint!("{}", loadsteal_trace::render_transient(&analysis));
    } else {
        print!("{}", loadsteal_trace::render_transient(&analysis));
    }

    // The drift verdict doubles as a machine-readable document: the
    // same transient.* gauge names the live `serve` exposition uses.
    if let Some(out) = a.raw("metrics-json") {
        let reg = Registry::new();
        reg.counter("sim.tail_samples")
            .add(analysis.points.iter().map(|p| p.runs as u64).sum());
        reg.gauge("transient.residual_sup")
            .set(analysis.residual_sup);
        reg.gauge("transient.mean_abs_residual")
            .set(analysis.mean_abs_residual);
        reg.gauge("transient.relaxation_time")
            .set(analysis.relaxation_time.unwrap_or(f64::NAN));
        reg.gauge("transient.ode_settling_time")
            .set(analysis.ode_settling_time.unwrap_or(f64::NAN));
        reg.counter("transient.drift_events")
            .add(analysis.drift.len() as u64);
        for (i, sup) in analysis.per_tail_sup.iter().enumerate() {
            reg.gauge(&format!("transient.residual_s{}", i + 1))
                .set(*sup);
        }
        let mut m = manifest();
        m.config("trace", path)
            .config("model", spec.to_string().as_str())
            .config("n", n)
            .config("dt", dt)
            .config("epsilon", opts.epsilon);
        let doc = m.to_run_document(&reg.snapshot());
        if out == "-" {
            println!("{doc}");
        } else {
            std::fs::write(out, format!("{doc}\n"))
                .map_err(|e| format!("--metrics-json: cannot write {out:?}: {e}"))?;
        }
    }
    Ok(())
}

/// `loadsteal models` — list every registry preset with its paper
/// section, fixed-point tail decay ratio `λ/(1+λ−π₂)`, and canonical
/// spec string (the shared `--model` grammar).
pub fn models(a: &Args) -> Result<(), String> {
    a.ensure_known(&["lambda"])?;
    let lambda = a.get::<f64>("lambda")?;
    println!(
        "{:<17} {:<6} {:<12} {:>10}  spec",
        "name", "tier", "section", "tail ratio"
    );
    for p in ModelRegistry::standard().presets() {
        let spec = match lambda {
            Some(l) => p.spec.clone().with_lambda(l),
            None => p.spec.clone(),
        };
        // The paper's asymptotic tail decay ratio λ/(1+λ−π₂), with π₂
        // read off the solved fixed point.
        let ratio = spec
            .fixed_point()
            .ok()
            .map(|fp| {
                let pi2 = fp.task_tails.get(2).copied().unwrap_or(0.0);
                format!("{:.4}", spec.lambda / (1.0 + spec.lambda - pi2))
            })
            .unwrap_or_else(|| "—".into());
        let tier = match p.tier {
            PresetTier::Quick => "quick",
            PresetTier::Full => "full",
        };
        println!(
            "{:<17} {:<6} {:<12} {:>10}  {}",
            p.name, tier, p.section, ratio, spec
        );
    }
    Ok(())
}

/// `loadsteal verify [--quick|--full]` — run the statistical
/// verification harness across the model zoo and print its pass/fail
/// table. Exits nonzero (via `Err`) when any check fails, so CI can
/// gate on it directly.
pub fn verify(a: &Args) -> Result<(), String> {
    a.ensure_known(&["seed", "filter"])?;
    if a.switch("quick") && a.switch("full") {
        return Err("pass at most one of --quick / --full".into());
    }
    let seed: u64 = a.get_or("seed", 42)?;
    let settings = if a.switch("full") {
        loadsteal_verify::Settings::full(seed)
    } else {
        loadsteal_verify::Settings::quick(seed)
    };
    let filter = a.raw("filter");
    println!(
        "verify: {} tier, seed {seed}, n = {}, {} runs × {} s per differential check",
        if a.switch("full") { "full" } else { "quick" },
        settings.n,
        settings.runs,
        settings.horizon,
    );
    let report = loadsteal_verify::run(&settings, filter);
    if report.results.is_empty() {
        return Err(format!(
            "no checks match filter {:?}",
            filter.unwrap_or_default()
        ));
    }
    print!("{}", report.render());
    if report.passed() {
        Ok(())
    } else {
        Err(format!(
            "{} verification check(s) failed",
            report.failures()
        ))
    }
}

/// `loadsteal serve` — run a simulation while exposing its live metrics
/// registry as a Prometheus scrape endpoint.
///
/// Minimal by design: a `std::net::TcpListener`, one request per
/// connection, text exposition format 0.0.4. With `--scrapes N` the
/// process exits after serving N requests (the workload is abandoned if
/// still running); otherwise it serves until the simulation finishes.
pub fn serve(a: &Args) -> Result<(), String> {
    // `serve --stealbench` swaps the simulator workload for the real
    // work-stealing pool and exposes its per-worker gauges.
    if a.switch("stealbench") {
        return serve_stealbench(a);
    }
    let mut known = SIM_FLAGS.to_vec();
    known.extend_from_slice(&["prom-addr", "scrapes"]);
    a.ensure_known(&known)?;
    let addr = a.raw("prom-addr").unwrap_or("127.0.0.1:9464");
    let scrapes: u64 = a.get_or("scrapes", 0)?;
    let spec = simulate_spec(a)?;
    let mut cfg = sim_config(a, &spec)?;
    cfg.sojourn_digest = true;
    // With --trace-jobs the registry recorder also maintains the
    // job.* lifecycle counters in the scrape.
    cfg.trace_jobs = a.switch("trace-jobs");
    let runs: usize = a.get_or("runs", 1)?;
    let seed: u64 = a.get_or("seed", 42)?;

    let registry = std::sync::Arc::new(Registry::new());
    let mut reg_rec = RegistryRecorder::new(registry.clone());
    // With --sample-tails the scrape also carries live drift: the ODE
    // trajectory is integrated up front on the sampling grid and every
    // tail sample is compared against it as it lands.
    if let Some(dt) = cfg.sample_tails {
        match spec.mean_field() {
            Ok(model) => {
                let traj = loadsteal_core::trajectory::sample_tails(
                    &model,
                    &model.empty_state(),
                    cfg.horizon + 0.5 * dt,
                    dt,
                )
                .map_err(|e| format!("--sample-tails: ODE reference failed: {e}"))?;
                let grid = traj.iter().map(|(t, row)| (*t, tails8(row))).collect();
                let fixed_point = spec
                    .fixed_point()
                    .map(|fp| tails8(&fp.task_tails))
                    .unwrap_or([0.0; TAIL_SAMPLE_DEPTH]);
                reg_rec = reg_rec.with_tail_reference(TailReference {
                    grid,
                    fixed_point,
                    epsilon: 0.02,
                });
            }
            Err(e) => loadsteal_obs::debug!("no transient reference for this spec: {e}"),
        }
    }
    let rec = SharedRecorder::new(reg_rec);
    let worker = {
        let cfg = cfg.clone();
        let rec = rec.clone();
        std::thread::spawn(move || {
            let result = replicate_recorded(&cfg, runs, seed, &rec);
            if let Some(d) = result.merged_sojourn_digest() {
                rec.with(|r| r.registry().sketch("sim.sojourn_time").merge_from(&d));
            }
        })
    };

    serve_metrics(addr, scrapes, &registry, || {}, || worker.is_finished())?;
    if worker.is_finished() {
        worker
            .join()
            .map_err(|_| "simulation worker panicked".to_string())?;
    }
    Ok(())
}

/// `loadsteal serve --stealbench` — drive the real work-stealing pool
/// (the `stealbench` workload) while serving its live per-worker
/// gauges: `exec.worker.<i>.deque_depth/inbox_depth/steals/parks/…`
/// refreshed on every scrape, plus a per-worker-sharded `exec.steals`
/// counter folded into one total at exposition time.
fn serve_stealbench(a: &Args) -> Result<(), String> {
    use std::sync::Arc;

    a.ensure_known(&[
        "workers",
        "lambda",
        "horizon",
        "tau-ms",
        "seed",
        "prom-addr",
        "scrapes",
    ])?;
    let addr = a.raw("prom-addr").unwrap_or("127.0.0.1:9464");
    let scrapes: u64 = a.get_or("scrapes", 0)?;
    let cfg = loadsteal_exec::stealbench::StealBenchConfig {
        workers: a.get_or("workers", 16)?,
        lambda: a.get_or("lambda", 0.9)?,
        horizon: a.get_or("horizon", 400.0)?,
        tau: a.get_or::<f64>("tau-ms", 4.0)? / 1_000.0,
        seed: a.get_or("seed", 42)?,
    };
    let registry = std::sync::Arc::new(Registry::new());
    let bench = Arc::new(loadsteal_exec::stealbench::StealBench::new_untraced(&cfg)?);
    let driver = {
        let bench = Arc::clone(&bench);
        std::thread::spawn(move || bench.drive())
    };

    // Steal totals flow through a per-worker-sharded counter: the
    // refresh below adds each worker's delta into that worker's own
    // slot, and the scrape reads the folded sum — the registry-side
    // mirror of the pool's padded per-worker counter discipline.
    let steals = registry.sharded_counter("exec.steals", cfg.workers);
    let mut prev_steals = vec![0u64; cfg.workers];
    let refresh_bench = Arc::clone(&bench);
    let refresh_registry = std::sync::Arc::clone(&registry);
    let refresh = move || {
        let per = refresh_bench.pool().worker_stats();
        for (i, w) in per.iter().enumerate() {
            let delta = w.steal_successes.saturating_sub(prev_steals[i]);
            if delta > 0 {
                steals.add(i, delta);
                prev_steals[i] = w.steal_successes;
            }
        }
        export_worker_gauges(&refresh_registry, &per);
        refresh_registry
            .gauge("exec.submitted")
            .set(refresh_bench.submitted_so_far() as f64);
        let stats = refresh_bench.pool().stats();
        refresh_registry
            .gauge("exec.completed")
            .set(stats.executed as f64);
    };

    serve_metrics(addr, scrapes, &registry, refresh, || driver.is_finished())?;
    if driver.is_finished() {
        driver
            .join()
            .map_err(|_| "stealbench driver panicked".to_string())?;
        if let Ok(bench) = Arc::try_unwrap(bench) {
            let (outcome, _) = bench.finish_detailed();
            let out = Narrator::new(false);
            say!(
                out,
                "stealbench: {} submitted, {} completed, {} steal hits / {} probes",
                outcome.submitted,
                outcome.completed,
                outcome.stats.steal_successes,
                outcome.stats.steal_attempts
            );
        }
    }
    Ok(())
}

/// The shared scrape loop behind `loadsteal serve`: bind, announce the
/// bound address on stdout (the machine-readable contract line), then
/// answer every GET with the registry in Prometheus text format.
/// `refresh` runs before each snapshot (live-gauge updates); the loop
/// ends after `scrapes` requests, or — when `scrapes` is 0 — once
/// `done` reports the workload finished.
fn serve_metrics(
    addr: &str,
    scrapes: u64,
    registry: &Registry,
    mut refresh: impl FnMut(),
    done: impl Fn() -> bool,
) -> Result<(), String> {
    use std::io::{Read as _, Write as _};

    let listener = std::net::TcpListener::bind(addr)
        .map_err(|e| format!("--prom-addr: cannot bind {addr:?}: {e}"))?;
    let local = listener
        .local_addr()
        .map_err(|e| format!("--prom-addr: {e}"))?;
    // The bound address line is a contract: with `--prom-addr host:0`
    // it is the only way callers learn the chosen port. Flush past any
    // pipe buffering.
    {
        let mut so = std::io::stdout();
        let _ = writeln!(so, "serving Prometheus metrics at http://{local}/metrics");
        let _ = so.flush();
    }
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("--prom-addr: {e}"))?;

    let mut served = 0u64;
    loop {
        match listener.accept() {
            Ok((mut stream, _)) => {
                let _ = stream.set_nonblocking(false);
                let _ = stream.set_read_timeout(Some(std::time::Duration::from_secs(2)));
                // Drain the request head; the path is irrelevant —
                // every GET gets the exposition.
                let mut buf = [0u8; 1024];
                let mut head = Vec::new();
                while !head.windows(4).any(|w| w == b"\r\n\r\n") {
                    match stream.read(&mut buf) {
                        Ok(0) => break,
                        Ok(k) => head.extend_from_slice(&buf[..k]),
                        Err(_) => break,
                    }
                    if head.len() > 64 * 1024 {
                        break;
                    }
                }
                refresh();
                let body = prometheus_text(&registry.snapshot(), "loadsteal");
                let resp = format!(
                    "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
                    body.len(),
                    body
                );
                let _ = stream.write_all(resp.as_bytes());
                let _ = stream.flush();
                served += 1;
                if scrapes > 0 && served >= scrapes {
                    break;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if scrapes == 0 && done() {
                    break;
                }
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
            Err(e) => return Err(format!("accept failed: {e}")),
        }
    }
    Ok(())
}

/// Mirror a per-worker executor snapshot into `exec.worker.<i>.*`
/// gauges (deque/inbox depth, steals, parks, …) — the rows behind
/// `loadsteal top` and the `serve --stealbench` Prometheus exposition.
pub(crate) fn export_worker_gauges(reg: &Registry, per_worker: &[loadsteal_exec::WorkerStats]) {
    for (i, w) in per_worker.iter().enumerate() {
        reg.gauge(&format!("exec.worker.{i}.deque_depth"))
            .set(w.queue_depth as f64);
        reg.gauge(&format!("exec.worker.{i}.inbox_depth"))
            .set(w.inbox_depth as f64);
        reg.gauge(&format!("exec.worker.{i}.executed"))
            .set(w.executed as f64);
        reg.gauge(&format!("exec.worker.{i}.steal_attempts"))
            .set(w.steal_attempts as f64);
        reg.gauge(&format!("exec.worker.{i}.steals"))
            .set(w.steal_successes as f64);
        reg.gauge(&format!("exec.worker.{i}.parks"))
            .set(w.parks as f64);
        reg.gauge(&format!("exec.worker.{i}.busy"))
            .set(if w.busy { 1.0 } else { 0.0 });
    }
}

/// Mirror the live span aggregates into a metrics registry (counter
/// `span.<path>.calls`, gauge `span.<path>.self_us`, duration sketch
/// `span.<path>.us`) so profiled runs carry them through the run
/// document and Prometheus exposition. A no-op when profiling is off.
fn export_spans(reg: &Registry) {
    if loadsteal_obs::span::enabled() {
        loadsteal_obs::span::export_to_registry(reg, &loadsteal_obs::span::snapshot());
    }
}

/// Write the `--profile <out>` export: folded stacks (inferno /
/// flamegraph.pl) when the path ends in `.folded`, Chrome trace-event
/// JSON (chrome://tracing, Perfetto) otherwise.
pub fn write_profile(path: &str, report: &loadsteal_obs::ProfileReport) -> Result<(), String> {
    let body = if path.ends_with(".folded") {
        report.folded()
    } else {
        let mut t = report.chrome_trace();
        t.push('\n');
        t
    };
    std::fs::write(path, body).map_err(|e| format!("--profile: cannot write {path:?}: {e}"))
}

/// Render the `loadsteal profile` report: top spans by self time, a
/// per-thread self-time decomposition when more than one thread
/// recorded (concurrent workers make the global sum exceed wall —
/// it is CPU time, not wall time), then simulator events/sec per
/// instrumented phase.
pub fn render_profile(report: &loadsteal_obs::ProfileReport, wall_ms: f64) -> String {
    const TOP: usize = 20;
    let mut out = String::new();
    let self_ms = report.total_self_us() / 1_000.0;
    let pct = if wall_ms > 0.0 {
        100.0 * self_ms / wall_ms
    } else {
        0.0
    };
    let threads = report.thread_spans.len();
    if threads > 1 {
        out.push_str(&format!(
            "PROFILE  wall {wall_ms:.1} ms, span self-time total {self_ms:.1} ms of CPU across {threads} threads ({pct:.1}% of wall; per-thread below)\n",
        ));
    } else {
        out.push_str(&format!(
            "PROFILE  wall {wall_ms:.1} ms, span self-time total {self_ms:.1} ms ({pct:.1}% of wall)\n",
        ));
    }
    let mut spans: Vec<_> = report.spans.iter().collect();
    spans.sort_by(|a, b| b.self_us.total_cmp(&a.self_us));
    let path_w = spans
        .iter()
        .take(TOP)
        .map(|s| s.path.len())
        .max()
        .unwrap_or(4)
        .max(4);
    out.push_str(&format!(
        "{:<path_w$}  {:>9}  {:>11}  {:>11}  {:>6}  {:>10}  {:>10}\n",
        "SPAN", "CALLS", "TOTAL ms", "SELF ms", "SELF%", "P50 us", "P99 us",
    ));
    for s in spans.iter().take(TOP) {
        let self_pct = if self_ms > 0.0 {
            100.0 * (s.self_us / 1_000.0) / self_ms
        } else {
            0.0
        };
        out.push_str(&format!(
            "{:<path_w$}  {:>9}  {:>11.2}  {:>11.2}  {:>5.1}%  {:>10.1}  {:>10.1}\n",
            s.path,
            s.count,
            s.total_us / 1_000.0,
            s.self_us / 1_000.0,
            self_pct,
            s.p50_us(),
            s.p99_us(),
        ));
    }
    if spans.len() > TOP {
        out.push_str(&format!("… and {} more spans\n", spans.len() - TOP));
    }
    // Per-worker self time: each row is one thread's CPU time inside
    // spans, which is what can be compared against wall (the global
    // sum above double-counts concurrency).
    if threads > 1 {
        out.push_str("\nTHREADS (self-time by recording thread)\n");
        let name_w = report
            .thread_spans
            .iter()
            .map(|t| t.name.len())
            .max()
            .unwrap_or(6)
            .max(6);
        out.push_str(&format!(
            "{:<name_w$}  {:>9}  {:>11}  {:>6}  HOTTEST SPAN\n",
            "THREAD", "SPANS", "SELF ms", "WALL%",
        ));
        for t in &report.thread_spans {
            let t_self_ms = t.self_us() / 1_000.0;
            let t_pct = if wall_ms > 0.0 {
                100.0 * t_self_ms / wall_ms
            } else {
                0.0
            };
            let hottest = t.hottest().map(|s| s.path.as_str()).unwrap_or("—");
            out.push_str(&format!(
                "{:<name_w$}  {:>9}  {:>11.2}  {:>5.1}%  {hottest}\n",
                t.name,
                t.count(),
                t_self_ms,
                t_pct,
            ));
        }
    }
    // Simulator phase throughput: span count = events of that kind, so
    // count / total-time is the per-phase processing rate.
    const SIM_PHASES: &[&str] = &[
        "sim.arrival",
        "sim.completion",
        "sim.steal_attempt",
        "sim.rebalance",
        "sim.transfer",
        "sim.heartbeat",
    ];
    let mut phases: Vec<_> = report
        .spans
        .iter()
        .filter(|s| SIM_PHASES.contains(&s.name()) && s.total_us > 0.0)
        .collect();
    if !phases.is_empty() {
        phases.sort_by_key(|s| std::cmp::Reverse(s.count));
        out.push_str("\nSIM PHASES (events/sec of span time)\n");
        for s in &phases {
            out.push_str(&format!(
                "{:<path_w$}  {:>9}  {:>14.0} ev/s\n",
                s.path,
                s.count,
                s.count as f64 / (s.total_us / 1e6),
            ));
        }
    }
    if report.dropped_instances > 0 {
        out.push_str(&format!(
            "\nnote: {} span instances beyond the {} retained cap were dropped from the\nChrome trace export (aggregates above still include them)\n",
            report.dropped_instances,
            loadsteal_obs::span::MAX_INSTANCES,
        ));
    }
    out
}
