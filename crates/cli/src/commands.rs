//! Command implementations.

use loadsteal_core::fixed_point::{solve as solve_fp, solve_traced, FixedPoint, FixedPointOptions};
use loadsteal_core::models::{
    ErlangStages, GeneralWs, Heterogeneous, MeanFieldModel, MultiChoice, MultiSteal, NoSteal,
    Preemptive, Rebalance, RebalanceRateFn, RepeatedSteal, SimpleWs, StaticDrain, ThresholdWs,
    TransferWs,
};
use loadsteal_core::stability::{check_l1_contraction, theorem_condition_holds};
use loadsteal_core::tail::TailVector;
use loadsteal_obs::{
    prometheus_text, EventCounts, NullRecorder, Recorder, Registry, RegistryRecorder,
    SharedRecorder,
};
use loadsteal_sim::{
    replicate, replicate_recorded, RebalanceRate, SimConfig, StealPolicy, TransferTime,
    DEFAULT_HEARTBEAT_EVERY,
};
use loadsteal_trace::{read_bytes, MeanFieldPrediction, ReadMode, Timeline, TimelineConfig};

use crate::args::Args;
use crate::obs::{manifest, say, Narrator, ObsOpts, OBS_FLAGS};

const MODEL_FLAGS: &[&str] = &[
    "model",
    "lambda",
    "threshold",
    "choices",
    "batch",
    "begin",
    "rate",
    "stages",
    "per-task",
    "fast-frac",
    "fast",
    "slow",
    "levels",
    "internal",
];

/// Solve a model's fixed point, dispatching on `--model`, with the
/// integrator's convergence trace sent to `rec`.
fn solve_model(a: &Args, rec: &mut dyn Recorder) -> Result<(String, FixedPoint), String> {
    let lambda: f64 = a.required("lambda")?;
    let opts = FixedPointOptions::default();
    let model = a.raw("model").unwrap_or("simple");

    macro_rules! fp {
        ($m:expr) => {{
            let m = $m;
            let name = m.name();
            let fp = solve_traced(&m, &opts, rec).map_err(|e| e.to_string())?;
            Ok((name, fp))
        }};
    }

    match model {
        "simple" => fp!(SimpleWs::new(lambda)?),
        "nosteal" => fp!(NoSteal::new(lambda)?),
        "threshold" => fp!(ThresholdWs::new(lambda, a.get_or("threshold", 2)?)?),
        "general" => fp!(GeneralWs::new(
            lambda,
            a.get_or("threshold", 2)?,
            a.get_or("choices", 1u32)?,
            a.get_or("batch", 1)?,
        )?),
        "multichoice" => fp!(MultiChoice::new(
            lambda,
            a.get_or("choices", 2u32)?,
            a.get_or("threshold", 2)?,
        )?),
        "multisteal" => fp!(MultiSteal::new(
            lambda,
            a.get_or("batch", 2)?,
            a.get_or("threshold", 4)?,
        )?),
        "preemptive" => fp!(Preemptive::new(
            lambda,
            a.get_or("begin", 1)?,
            a.get_or("threshold", 3)?,
        )?),
        "repeated" => fp!(RepeatedSteal::new(
            lambda,
            a.get_or("rate", 1.0)?,
            a.get_or("threshold", 2)?,
        )?),
        "erlang" => fp!(ErlangStages::new(lambda, a.get_or("stages", 10)?)?),
        "transfer" => fp!(TransferWs::new(
            lambda,
            a.get_or("rate", 0.25)?,
            a.get_or("threshold", 4)?,
        )?),
        "rebalance" => {
            let r: f64 = a.get_or("rate", 1.0)?;
            let rate = if a.get_or("per-task", false)? {
                RebalanceRateFn::PerTask(r)
            } else {
                RebalanceRateFn::Constant(r)
            };
            fp!(Rebalance::new(lambda, rate)?)
        }
        "heterogeneous" => fp!(Heterogeneous::new(
            lambda,
            a.get_or("fast-frac", 0.5)?,
            a.get_or("fast", 1.5)?,
            a.get_or("slow", 0.8)?,
            a.get_or("threshold", 2)?,
        )?),
        other => Err(format!("unknown model {other:?} (see `loadsteal help`)")),
    }
}

/// Add the solver counters common to every traced command.
fn solver_metrics(reg: &Registry, c: &EventCounts) {
    reg.counter("solver.steps_accepted").add(c.solver_accepted);
    reg.counter("solver.steps_rejected").add(c.solver_rejected);
    reg.counter("solver.steady_samples").add(c.solver_steady);
    reg.counter("solver.integrations").add(c.solver_done);
    reg.gauge("solver.max_reject_streak")
        .set(c.solver_max_reject_streak as f64);
    reg.gauge("solver.stiffness_hint")
        .set(if c.solver_max_reject_streak >= 5 {
            1.0
        } else {
            0.0
        });
}

/// `loadsteal solve` — fixed point metrics.
pub fn solve(a: &Args) -> Result<(), String> {
    let mut known = MODEL_FLAGS.to_vec();
    known.extend_from_slice(OBS_FLAGS);
    a.ensure_known(&known)?;
    let obs = ObsOpts::from_args(a)?;
    let out = Narrator::new(obs.machine_stdout());
    let mut rec = obs.recorder()?;
    let (name, fp) = solve_model(a, &mut rec)?;
    let (counts, trace_lines) = rec.finish()?;
    say!(out, "model:                 {name}");
    say!(out, "truncation levels:     {}", fp.truncation);
    say!(
        out,
        "residual ‖F(π)‖∞:      {:.3e}{}",
        fp.residual,
        if fp.polished {
            " (Newton-polished)"
        } else {
            " (integration only)"
        }
    );
    say!(
        out,
        "busy fraction s₁:      {:.6}",
        fp.task_tails.get(1).copied().unwrap_or(0.0)
    );
    say!(out, "mean tasks / proc L:   {:.6}", fp.mean_tasks);
    say!(out, "mean time in system W: {:.6}", fp.mean_time_in_system);
    if let Some(r) = fp.tail_ratio() {
        say!(out, "tail decay ratio:      {r:.6}");
    }
    if obs.metrics_json.is_some() {
        let reg = Registry::new();
        solver_metrics(&reg, &counts);
        reg.gauge("solver.residual").set(fp.residual);
        reg.gauge("solver.truncation").set(fp.truncation as f64);
        reg.gauge("solver.mean_tasks").set(fp.mean_tasks);
        reg.gauge("solver.mean_time_in_system")
            .set(fp.mean_time_in_system);
        if trace_lines > 0 {
            reg.counter("trace.lines").add(trace_lines);
        }
        let mut m = manifest();
        m.config("model", a.raw("model").unwrap_or("simple"))
            .config("lambda", a.required::<f64>("lambda")?);
        obs.emit(&m, &reg.snapshot())?;
    }
    Ok(())
}

/// `loadsteal tails` — fixed point occupancy tails.
pub fn tails(a: &Args) -> Result<(), String> {
    a.ensure_known(MODEL_FLAGS)?;
    let levels: usize = a.get_or("levels", 12)?;
    let (name, fp) = solve_model(a, &mut NullRecorder)?;
    println!("model: {name}");
    println!("{:>4} {:>14}", "i", "s_i");
    for i in 0..=levels {
        println!(
            "{i:>4} {:>14.8}",
            fp.task_tails.get(i).copied().unwrap_or(0.0)
        );
    }
    Ok(())
}

const SIM_FLAGS: &[&str] = &[
    "n",
    "lambda",
    "policy",
    "threshold",
    "choices",
    "batch",
    "begin",
    "rate",
    "transfer-rate",
    "runs",
    "horizon",
    "warmup",
    "seed",
    "internal",
    "service-stages",
    "constant-service",
    "heartbeat-every",
];

/// Solve the mean-field companion of a simulation policy, feeding the
/// solver's convergence trace into `rec`, so a simulation's metrics
/// report carries solver counters next to the simulator's. Model
/// construction or convergence failures (e.g. an unstable λ) are not
/// fatal: the companion is simply reported as unavailable.
fn companion_fixed_point(
    a: &Args,
    lambda: f64,
    rec: &mut dyn Recorder,
) -> Option<(String, FixedPoint)> {
    match companion_solve(a, lambda, rec) {
        Ok(v) => Some(v),
        Err(e) => {
            loadsteal_obs::debug!("mean-field companion unavailable: {e}");
            None
        }
    }
}

fn companion_solve(
    a: &Args,
    lambda: f64,
    rec: &mut dyn Recorder,
) -> Result<(String, FixedPoint), String> {
    let opts = FixedPointOptions::default();
    macro_rules! fp {
        ($m:expr) => {{
            let m = $m;
            let name = m.name();
            let fp = solve_traced(&m, &opts, rec).map_err(|e| e.to_string())?;
            Ok((name, fp))
        }};
    }
    match a.raw("policy").unwrap_or("simple") {
        "none" => fp!(NoSteal::new(lambda)?),
        "simple" => fp!(SimpleWs::new(lambda)?),
        "threshold" => fp!(GeneralWs::new(
            lambda,
            a.get_or("threshold", 2)?,
            a.get_or("choices", 1u32)?,
            a.get_or("batch", 1)?,
        )?),
        "preemptive" => fp!(Preemptive::new(
            lambda,
            a.get_or("begin", 1)?,
            a.get_or("threshold", 3)?,
        )?),
        "repeated" => fp!(RepeatedSteal::new(
            lambda,
            a.get_or("rate", 1.0)?,
            a.get_or("threshold", 2)?,
        )?),
        "rebalance" => fp!(Rebalance::new(
            lambda,
            RebalanceRateFn::Constant(a.get_or("rate", 1.0)?),
        )?),
        other => Err(format!("no mean-field companion for policy {other:?}")),
    }
}

/// Build a [`SimConfig`] from the shared simulation flags (used by
/// `simulate` and `serve`).
fn sim_config(a: &Args) -> Result<SimConfig, String> {
    let n: usize = a.required("n")?;
    let lambda: f64 = a.required("lambda")?;
    let mut cfg = SimConfig::paper_default(n, lambda);
    cfg.horizon = a.get_or("horizon", 20_000.0)?;
    cfg.warmup = a.get_or("warmup", cfg.horizon / 10.0)?;
    cfg.internal_lambda = a.get_or("internal", 0.0)?;
    cfg.heartbeat_every = a.get_or("heartbeat-every", DEFAULT_HEARTBEAT_EVERY)?;
    if a.get_or("constant-service", false)? {
        cfg.service = loadsteal_queueing::ServiceDistribution::unit_deterministic();
    } else if let Some(stages) = a.get::<u32>("service-stages")? {
        cfg.service = loadsteal_queueing::ServiceDistribution::unit_erlang(stages);
    }
    cfg.policy = match a.raw("policy").unwrap_or("simple") {
        "none" => StealPolicy::None,
        "simple" => StealPolicy::simple_ws(),
        "threshold" => StealPolicy::OnEmpty {
            threshold: a.get_or("threshold", 2)?,
            choices: a.get_or("choices", 1)?,
            batch: a.get_or("batch", 1)?,
        },
        "preemptive" => StealPolicy::Preemptive {
            begin_at: a.get_or("begin", 1)?,
            rel_threshold: a.get_or("threshold", 3)?,
        },
        "repeated" => StealPolicy::Repeated {
            rate: a.get_or("rate", 1.0)?,
            threshold: a.get_or("threshold", 2)?,
        },
        "rebalance" => StealPolicy::Rebalance {
            rate: RebalanceRate::Constant(a.get_or("rate", 1.0)?),
        },
        other => return Err(format!("unknown policy {other:?}")),
    };
    if let Some(r) = a.get::<f64>("transfer-rate")? {
        cfg.transfer = Some(TransferTime::exponential(r));
    }
    cfg.validate().map_err(|e| e.to_string())?;
    Ok(cfg)
}

/// `loadsteal simulate` — run the discrete-event simulator.
pub fn simulate(a: &Args) -> Result<(), String> {
    let mut known = SIM_FLAGS.to_vec();
    known.extend_from_slice(OBS_FLAGS);
    a.ensure_known(&known)?;
    let mut cfg = sim_config(a)?;
    let n = cfg.n;
    let lambda = cfg.lambda;
    let runs: usize = a.get_or("runs", 3)?;
    let seed: u64 = a.get_or("seed", 42)?;

    let obs = ObsOpts::from_args(a)?;
    // Collect sojourn quantiles whenever the metrics document will be
    // written; the digest stays off otherwise so the hot loop pays
    // nothing for it.
    cfg.sojourn_digest = obs.metrics_json.is_some();
    let out = Narrator::new(obs.machine_stdout());
    let mut rec = obs.recorder()?;
    let observing = rec.enabled();

    let mean_field = if observing {
        companion_fixed_point(a, lambda, &mut rec)
    } else {
        None
    };

    let shared = SharedRecorder::new(rec);
    let result = replicate_recorded(&cfg, runs, seed, &shared);
    let rec = shared
        .try_into_inner()
        .expect("replication worker handles are released");
    let (counts, trace_lines) = rec.finish()?;

    let ci = result.sojourn_ci();
    say!(
        out,
        "config:              n = {n}, λ = {lambda}, policy = {:?}",
        cfg.policy
    );
    say!(
        out,
        "protocol:            {runs} × {:.0} s (warmup {:.0} s), seed {seed}",
        cfg.horizon,
        cfg.warmup
    );
    say!(
        out,
        "mean time in system: {:.4} ± {:.4} (95% CI over runs)",
        ci.mean,
        ci.half_width
    );
    if let Some((mname, fp)) = &mean_field {
        say!(
            out,
            "mean-field W (n→∞):  {:.4} ({mname})",
            fp.mean_time_in_system
        );
    }
    let r0 = &result.runs[0];
    say!(
        out,
        "per run ≈ {} tasks, steal success rate {:.1}%",
        r0.tasks_completed,
        100.0 * r0.steal_success_rate()
    );
    let tails = result.mean_load_tails();
    let mut tail_line = String::from("tails s₁..s₈:        ");
    for i in 1..=8 {
        tail_line.push_str(&format!("{:.4} ", tails.get(i).copied().unwrap_or(0.0)));
    }
    say!(out, "{}", tail_line.trim_end());

    if obs.metrics_json.is_some() {
        let reg = Registry::new();
        reg.counter("sim.arrivals").add(counts.arrivals);
        reg.counter("sim.completions").add(counts.completions);
        reg.counter("sim.steal_attempts").add(counts.steal_attempts);
        reg.counter("sim.steal_successes")
            .add(counts.steal_successes);
        reg.counter("sim.migrations").add(counts.migrations);
        reg.counter("sim.tasks_migrated").add(counts.tasks_migrated);
        reg.counter("sim.heartbeats").add(counts.heartbeats);
        reg.counter("sim.replicates").add(counts.replicates);
        let (mut events, mut attempts, mut successes) = (0u64, 0u64, 0u64);
        let wall_hist = reg.histogram("sim.run_wall_ms");
        let ev_hist = reg.histogram("sim.run_events");
        for r in &result.runs {
            events += r.events_processed;
            attempts += r.steal_attempts;
            successes += r.steal_successes;
            wall_hist.record(r.wall_ms.round() as u64);
            ev_hist.record(r.events_processed);
        }
        reg.counter("sim.events").add(events);
        // Streaming sojourn-time quantiles, merged across runs.
        if let Some(d) = result.merged_sojourn_digest() {
            reg.sketch("sim.sojourn_time").merge_from(&d);
        }
        reg.gauge("sim.mean_sojourn").set(ci.mean);
        reg.gauge("sim.sojourn_ci_half_width").set(ci.half_width);
        reg.gauge("sim.steal_success_rate").set(if attempts == 0 {
            0.0
        } else {
            successes as f64 / attempts as f64
        });
        solver_metrics(&reg, &counts);
        if let Some((_, fp)) = &mean_field {
            reg.gauge("solver.residual").set(fp.residual);
            reg.gauge("solver.mean_time_in_system")
                .set(fp.mean_time_in_system);
        }
        if trace_lines > 0 {
            reg.counter("trace.lines").add(trace_lines);
        }
        let mut m = manifest();
        m.seed = Some(seed);
        m.config("n", n)
            .config("lambda", lambda)
            .config("policy", a.raw("policy").unwrap_or("simple"))
            .config("runs", runs)
            .config("horizon", cfg.horizon)
            .config("warmup", cfg.warmup);
        if let Some((mname, _)) = &mean_field {
            m.config("mean_field_model", mname.as_str());
        }
        obs.emit(&m, &reg.snapshot())?;
    }
    Ok(())
}

/// `loadsteal stability` — Section 4 contraction check.
pub fn stability(a: &Args) -> Result<(), String> {
    a.ensure_known(&["lambda", "t-max"])?;
    let lambda: f64 = a.required("lambda")?;
    let t_max: f64 = a.get_or("t-max", 50_000.0)?;
    let m = SimpleWs::new(lambda)?;
    let fp = solve_fp(&m, &FixedPointOptions::default()).map_err(|e| e.to_string())?;
    println!(
        "Theorem 1 hypothesis π₂ < 1/2: {} (π₂ = {:.4})",
        if theorem_condition_holds(lambda) {
            "holds"
        } else {
            "does NOT hold"
        },
        m.pi2()
    );
    for (name, start) in [
        ("empty", m.empty_state()),
        (
            "uniform load 4",
            TailVector::uniform_load(4, m.truncation()).into_vec(),
        ),
        (
            "geometric 0.97",
            TailVector::geometric(0.97, m.truncation()).into_vec(),
        ),
    ] {
        let rep =
            check_l1_contraction(&m, &start, &fp.state, 1e-6, t_max).map_err(|e| e.to_string())?;
        println!(
            "start {name:>16}: D₀ = {:.4}, max increase {:.2e}, converged at {}, decay γ ≈ {}",
            rep.initial_distance,
            rep.max_increase,
            rep.converged_at
                .map(|t| format!("t = {t:.1}"))
                .unwrap_or_else(|| "— (not within horizon)".into()),
            rep.decay_rate()
                .map(|g| format!("{g:.4}"))
                .unwrap_or_else(|| "—".into()),
        );
    }
    Ok(())
}

/// `loadsteal drain` — static system drain comparison.
pub fn drain(a: &Args) -> Result<(), String> {
    a.ensure_known(&["initial", "n", "internal", "runs", "seed"])?;
    let initial: usize = a.required("initial")?;
    let n: usize = a.get_or("n", 128)?;
    let internal: f64 = a.get_or("internal", 0.0)?;
    let model = StaticDrain::new(0.0, internal, 4 * initial + 16)?;
    let predicted = model
        .drain_time(initial, 1e-3, 1e6)
        .map_err(|e| e.to_string())?;
    println!("mean-field drain time (n → ∞): {predicted:.2}");

    let mut cfg = SimConfig::paper_default(n, 0.0);
    cfg.lambda = 0.0;
    cfg.internal_lambda = internal;
    cfg.run_until_drained = true;
    cfg.initial_load = initial;
    cfg.warmup = 0.0;
    cfg.policy = StealPolicy::Repeated {
        rate: 8.0,
        threshold: 2,
    };
    let runs: usize = a.get_or("runs", 5)?;
    let seed: u64 = a.get_or("seed", 42)?;
    let result = replicate(&cfg, runs, seed);
    println!(
        "simulated makespan (n = {n}, {runs} runs): {:.2} ± {:.2}",
        result.makespan_mean.mean(),
        result.makespan_mean.confidence_interval(0.95).half_width
    );
    Ok(())
}

/// `loadsteal report <trace.ndjson>` — reconstruct a timeline from a
/// trace and compare it against the mean-field prediction.
pub fn report(a: &Args) -> Result<(), String> {
    a.ensure_known(&["warmup", "lambda", "input"])?;
    let path = a
        .positional(0)
        .or_else(|| a.raw("input"))
        .ok_or("usage: loadsteal report <trace.ndjson> [--lossy] [--warmup T] [--lambda λ]")?;
    if a.positional(1).is_some() {
        return Err("report takes exactly one trace file".into());
    }
    // Raw bytes, not read_to_string: a trace with one corrupt region
    // should still be reportable under --lossy, with the bad lines
    // diagnosed individually instead of the whole file rejected.
    let bytes = std::fs::read(path).map_err(|e| format!("cannot read trace {path:?}: {e}"))?;
    let mode = if a.switch("lossy") {
        ReadMode::Lossy
    } else {
        ReadMode::Strict
    };
    let parsed = read_bytes(&bytes, mode).map_err(|e| format!("{path}: {e} (try --lossy)"))?;
    if !parsed.skipped.is_empty() {
        eprintln!(
            "warning: skipped {} of {} lines (first: {})",
            parsed.skipped.len(),
            parsed.lines,
            parsed.skipped[0]
        );
    }
    let warmup: f64 = a.get_or("warmup", 0.0)?;
    let tl = Timeline::build(
        &parsed.events,
        &TimelineConfig {
            warmup,
            ..TimelineConfig::default()
        },
    );

    // Mean-field comparison at --lambda, or at the measured arrival
    // rate when the flag is omitted. The paper's basic work-stealing
    // model (Section 2) supplies π₂ and the predicted sojourn time; an
    // unstable or degenerate rate simply drops the prediction columns.
    let lambda = match a.get::<f64>("lambda")? {
        Some(l) => Some(l),
        None => {
            let l = tl.arrival_rate();
            (l > 0.0 && l < 1.0).then_some(l)
        }
    };
    let pred = lambda.and_then(|l| {
        let m = SimpleWs::new(l).ok()?;
        let fp = solve_fp(&m, &FixedPointOptions::default()).ok()?;
        Some(MeanFieldPrediction::new(l, m.pi2(), fp.mean_time_in_system))
    });
    print!("{}", loadsteal_trace::render_report(&tl, pred.as_ref()));
    Ok(())
}

/// `loadsteal verify [--quick|--full]` — run the statistical
/// verification harness across the model zoo and print its pass/fail
/// table. Exits nonzero (via `Err`) when any check fails, so CI can
/// gate on it directly.
pub fn verify(a: &Args) -> Result<(), String> {
    a.ensure_known(&["seed", "filter"])?;
    if a.switch("quick") && a.switch("full") {
        return Err("pass at most one of --quick / --full".into());
    }
    let seed: u64 = a.get_or("seed", 42)?;
    let settings = if a.switch("full") {
        loadsteal_verify::Settings::full(seed)
    } else {
        loadsteal_verify::Settings::quick(seed)
    };
    let filter = a.raw("filter");
    println!(
        "verify: {} tier, seed {seed}, n = {}, {} runs × {} s per differential check",
        if a.switch("full") { "full" } else { "quick" },
        settings.n,
        settings.runs,
        settings.horizon,
    );
    let report = loadsteal_verify::run(&settings, filter);
    if report.results.is_empty() {
        return Err(format!(
            "no checks match filter {:?}",
            filter.unwrap_or_default()
        ));
    }
    print!("{}", report.render());
    if report.passed() {
        Ok(())
    } else {
        Err(format!(
            "{} verification check(s) failed",
            report.failures()
        ))
    }
}

/// `loadsteal serve` — run a simulation while exposing its live metrics
/// registry as a Prometheus scrape endpoint.
///
/// Minimal by design: a `std::net::TcpListener`, one request per
/// connection, text exposition format 0.0.4. With `--scrapes N` the
/// process exits after serving N requests (the workload is abandoned if
/// still running); otherwise it serves until the simulation finishes.
pub fn serve(a: &Args) -> Result<(), String> {
    use std::io::{Read as _, Write as _};

    let mut known = SIM_FLAGS.to_vec();
    known.extend_from_slice(&["prom-addr", "scrapes"]);
    a.ensure_known(&known)?;
    let addr = a.raw("prom-addr").unwrap_or("127.0.0.1:9464");
    let scrapes: u64 = a.get_or("scrapes", 0)?;
    let mut cfg = sim_config(a)?;
    cfg.sojourn_digest = true;
    let runs: usize = a.get_or("runs", 1)?;
    let seed: u64 = a.get_or("seed", 42)?;

    let registry = std::sync::Arc::new(Registry::new());
    let rec = SharedRecorder::new(RegistryRecorder::new(registry.clone()));
    let worker = {
        let cfg = cfg.clone();
        let rec = rec.clone();
        std::thread::spawn(move || {
            let result = replicate_recorded(&cfg, runs, seed, &rec);
            if let Some(d) = result.merged_sojourn_digest() {
                rec.with(|r| r.registry().sketch("sim.sojourn_time").merge_from(&d));
            }
        })
    };

    let listener = std::net::TcpListener::bind(addr)
        .map_err(|e| format!("--prom-addr: cannot bind {addr:?}: {e}"))?;
    let local = listener
        .local_addr()
        .map_err(|e| format!("--prom-addr: {e}"))?;
    // The bound address line is a contract: with `--prom-addr host:0`
    // it is the only way callers learn the chosen port. Flush past any
    // pipe buffering.
    {
        let mut so = std::io::stdout();
        let _ = writeln!(so, "serving Prometheus metrics at http://{local}/metrics");
        let _ = so.flush();
    }
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("--prom-addr: {e}"))?;

    let mut served = 0u64;
    loop {
        match listener.accept() {
            Ok((mut stream, _)) => {
                let _ = stream.set_nonblocking(false);
                let _ = stream.set_read_timeout(Some(std::time::Duration::from_secs(2)));
                // Drain the request head; the path is irrelevant —
                // every GET gets the exposition.
                let mut buf = [0u8; 1024];
                let mut head = Vec::new();
                while !head.windows(4).any(|w| w == b"\r\n\r\n") {
                    match stream.read(&mut buf) {
                        Ok(0) => break,
                        Ok(k) => head.extend_from_slice(&buf[..k]),
                        Err(_) => break,
                    }
                    if head.len() > 64 * 1024 {
                        break;
                    }
                }
                let body = prometheus_text(&registry.snapshot(), "loadsteal");
                let resp = format!(
                    "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
                    body.len(),
                    body
                );
                let _ = stream.write_all(resp.as_bytes());
                let _ = stream.flush();
                served += 1;
                if scrapes > 0 && served >= scrapes {
                    break;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if scrapes == 0 && worker.is_finished() {
                    break;
                }
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
            Err(e) => return Err(format!("accept failed: {e}")),
        }
    }
    if worker.is_finished() {
        worker
            .join()
            .map_err(|_| "simulation worker panicked".to_string())?;
    }
    Ok(())
}
