//! End-to-end tests of `loadsteal converge`: the geometric size sweep,
//! the grep-able slope line, and the `converge.*` gauges in the
//! `loadsteal.run.v1` metrics document.

use std::process::Command;

fn loadsteal(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_loadsteal"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

/// Pull one numeric gauge out of a metrics document. The document is a
/// single JSON object whose gauge map serializes as `"name":value`
/// pairs with plain (unescaped) metric names, so a key scan followed by
/// a strict `f64` parse of the value token is exact for this shape; a
/// missing key or a non-numeric value fails the test loudly.
fn gauge(doc: &str, name: &str) -> f64 {
    let key = format!("\"{name}\":");
    let at = doc
        .find(&key)
        .unwrap_or_else(|| panic!("gauge {name} missing from {doc}"));
    let rest = &doc[at + key.len()..];
    let end = rest
        .find([',', '}'])
        .unwrap_or_else(|| panic!("unterminated value for {name}"));
    rest[..end]
        .trim()
        .parse()
        .unwrap_or_else(|e| panic!("gauge {name} is not a number ({e}): {rest:.40}"))
}

const QUICK_SWEEP: &[&str] = &[
    "converge",
    "--model",
    "simple-ws",
    "--lambda",
    "0.9",
    "--n-min",
    "32",
    "--n-max",
    "128",
    "--runs",
    "2",
    "--horizon",
    "400",
    "--warmup",
    "40",
    "--seed",
    "3",
];

#[test]
fn converge_prints_a_grepable_slope_line() {
    let (ok, stdout, stderr) = loadsteal(QUICK_SWEEP);
    assert!(ok, "stderr: {stderr}");
    let line = stdout
        .lines()
        .find(|l| l.starts_with("convergence slope:"))
        .unwrap_or_else(|| panic!("no slope line in {stdout}"));
    // The CI smoke step greps exactly this shape.
    assert!(line.contains("R²"), "{line}");
    assert!(line.contains("3 sizes"), "{line}");
    assert!(line.contains("Θ(1/n)"), "{line}");
}

#[test]
fn converge_exports_slope_and_error_gauges() {
    let path = std::env::temp_dir().join("loadsteal_converge_cli_test.json");
    let path_s = path.to_str().unwrap();
    let mut args = QUICK_SWEEP.to_vec();
    args.extend_from_slice(&["--metrics-json", path_s]);
    let (ok, _, stderr) = loadsteal(&args);
    assert!(ok, "stderr: {stderr}");
    let doc = std::fs::read_to_string(&path).expect("metrics file written");
    let _ = std::fs::remove_file(&path);

    assert!(doc.contains("\"loadsteal.run.v1\""), "{doc}");
    // Grid 32 → 128 by doubling: three sizes, one error gauge each,
    // all positive (a finite system never sits exactly on the fixed
    // point).
    assert_eq!(gauge(&doc, "converge.sizes"), 3.0);
    for n in [32, 64, 128] {
        let e = gauge(&doc, &format!("converge.err_n{n}"));
        assert!(e > 0.0 && e.is_finite(), "err_n{n} = {e}");
    }
    // At this tiny protocol only the gross shape of the fit is stable:
    // the slope must be a finite negative number (errors shrink with
    // n), not its asymptotic value.
    let slope = gauge(&doc, "converge.slope");
    assert!(slope.is_finite() && slope < 0.0, "slope = {slope}");
    let r2 = gauge(&doc, "converge.r_squared");
    assert!((0.0..=1.0).contains(&r2), "R² = {r2}");
}

#[test]
fn converge_respects_the_engine_flag() {
    // Same sweep under both engines: bit-identical traces imply
    // identical tail estimates, so the exported error gauges must
    // match exactly.
    let mut docs = Vec::new();
    for engine in ["heap", "calendar"] {
        let path = std::env::temp_dir().join(format!("loadsteal_converge_{engine}.json"));
        let path_s = path.to_str().unwrap();
        let mut args = QUICK_SWEEP.to_vec();
        args.extend_from_slice(&["--engine", engine, "--metrics-json", path_s]);
        let (ok, _, stderr) = loadsteal(&args);
        assert!(ok, "stderr: {stderr}");
        let doc = std::fs::read_to_string(&path).expect("metrics file written");
        let _ = std::fs::remove_file(&path);
        docs.push(doc);
    }
    for n in [32, 64, 128] {
        let key = format!("converge.err_n{n}");
        assert_eq!(
            gauge(&docs[0], &key),
            gauge(&docs[1], &key),
            "engines diverged on {key}"
        );
    }
}

#[test]
fn converge_rejects_a_degenerate_grid() {
    let (ok, _, stderr) = loadsteal(&[
        "converge",
        "--model",
        "simple-ws",
        "--lambda",
        "0.9",
        "--n-min",
        "64",
        "--n-max",
        "64",
    ]);
    assert!(!ok);
    assert!(stderr.contains("grid"), "{stderr}");
}
