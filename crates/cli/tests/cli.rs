//! End-to-end tests of the `loadsteal` binary.

use std::process::Command;

fn loadsteal(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_loadsteal"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn help_prints_usage() {
    let (ok, stdout, _) = loadsteal(&["help"]);
    assert!(ok);
    assert!(stdout.contains("USAGE"));
    assert!(stdout.contains("solve"));
}

#[test]
fn no_arguments_fails_with_usage() {
    let (ok, _, stderr) = loadsteal(&[]);
    assert!(!ok);
    assert!(stderr.contains("USAGE"));
}

#[test]
fn solve_simple_reports_table1_estimate() {
    let (ok, stdout, stderr) = loadsteal(&["solve", "--model", "simple", "--lambda", "0.9"]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("mean time in system"), "{stdout}");
    // λ = 0.9 estimate is 3.541 (paper Table 1).
    assert!(stdout.contains("3.541"), "{stdout}");
}

#[test]
fn solve_threshold_takes_flags_in_both_forms() {
    let (ok, a, _) = loadsteal(&[
        "solve",
        "--model",
        "threshold",
        "--lambda",
        "0.8",
        "--threshold",
        "4",
    ]);
    assert!(ok);
    let (ok2, b, _) = loadsteal(&[
        "solve",
        "--model=threshold",
        "--lambda=0.8",
        "--threshold=4",
    ]);
    assert!(ok2);
    assert_eq!(a, b);
}

#[test]
fn tails_prints_monotone_levels() {
    let (ok, stdout, _) = loadsteal(&[
        "tails", "--model", "simple", "--lambda", "0.7", "--levels", "6",
    ]);
    assert!(ok);
    let values: Vec<f64> = stdout
        .lines()
        .filter_map(|l| l.split_whitespace().nth(1).and_then(|v| v.parse().ok()))
        .collect();
    assert!(values.len() >= 6, "{stdout}");
    for w in values.windows(2) {
        assert!(w[0] >= w[1] - 1e-12, "{stdout}");
    }
}

#[test]
fn simulate_runs_a_short_experiment() {
    let (ok, stdout, stderr) = loadsteal(&[
        "simulate",
        "--n",
        "16",
        "--lambda",
        "0.5",
        "--runs",
        "2",
        "--horizon",
        "500",
        "--warmup",
        "50",
        "--seed",
        "1",
    ]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("mean time in system"), "{stdout}");
}

#[test]
fn unknown_model_is_a_clean_error() {
    let (ok, _, stderr) = loadsteal(&["solve", "--model", "bogus", "--lambda", "0.5"]);
    assert!(!ok);
    assert!(stderr.contains("unknown model"), "{stderr}");
}

#[test]
fn unknown_flag_is_a_clean_error() {
    let (ok, _, stderr) = loadsteal(&[
        "solve", "--model", "simple", "--lambda", "0.5", "--tresh", "2",
    ]);
    assert!(!ok);
    assert!(stderr.contains("unknown flag"), "{stderr}");
}

#[test]
fn invalid_lambda_is_a_clean_error() {
    let (ok, _, stderr) = loadsteal(&["solve", "--model", "simple", "--lambda", "1.5"]);
    assert!(!ok);
    assert!(stderr.contains("arrival rate"), "{stderr}");
}

#[test]
fn drain_reports_both_numbers() {
    let (ok, stdout, stderr) = loadsteal(&["drain", "--initial", "5", "--n", "16", "--runs", "2"]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("mean-field drain time"));
    assert!(stdout.contains("simulated makespan"));
}

#[test]
fn verify_filtered_layer_passes_and_renders_a_table() {
    // The determinism layer is simulation-light (n ≤ 16, short
    // horizons), so it is fast enough for an e2e test even unoptimized.
    let (ok, stdout, stderr) = loadsteal(&["verify", "--quick", "--filter", "determinism"]);
    assert!(ok, "stderr: {stderr}\nstdout: {stdout}");
    assert!(stdout.contains("determinism"), "{stdout}");
    assert!(stdout.contains("PASS"), "{stdout}");
    assert!(stdout.contains("0 failed"), "{stdout}");
}

#[test]
fn verify_rejects_conflicting_tiers() {
    let (ok, _, stderr) = loadsteal(&["verify", "--quick", "--full"]);
    assert!(!ok);
    assert!(stderr.contains("--quick"), "{stderr}");
}

#[test]
fn verify_unmatched_filter_is_a_clean_error() {
    let (ok, _, stderr) = loadsteal(&["verify", "--filter", "no-such-check"]);
    assert!(!ok);
    assert!(stderr.contains("no checks match"), "{stderr}");
}

#[test]
fn models_lists_every_registry_preset_with_tail_ratios() {
    let (ok, stdout, stderr) = loadsteal(&["models"]);
    assert!(ok, "stderr: {stderr}");
    for preset in ["simple-ws", "threshold-erlang", "work-sharing", "rebalance"] {
        assert!(stdout.contains(preset), "missing {preset}: {stdout}");
    }
    assert!(stdout.contains("tail ratio"), "{stdout}");
    assert!(
        stdout.contains("lambda=0.9,policy=steal,T=2,d=1,k=1"),
        "{stdout}"
    );
    // λ = 0.8 no-steal is an M/M/1 with geometric tails, so π₂ = λ²
    // and the ratio λ/(1+λ−π₂) = 0.8/(1.8 − 0.64) = 0.6897 exactly.
    let (ok, stdout, _) = loadsteal(&["models", "--lambda", "0.8"]);
    assert!(ok);
    assert!(stdout.contains("0.6897"), "{stdout}");
}

#[test]
fn solve_accepts_registry_presets_and_spec_overrides() {
    // Preset alone: λ comes from the preset definition.
    let (ok, stdout, stderr) = loadsteal(&["solve", "--model", "simple-ws"]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("3.541"), "{stdout}");
    // --lambda overrides the preset's λ; matches the legacy spelling.
    let (ok, a, _) = loadsteal(&["solve", "--model", "simple-ws", "--lambda", "0.8"]);
    assert!(ok);
    let (ok2, b, _) = loadsteal(&["solve", "--model", "simple", "--lambda", "0.8"]);
    assert!(ok2);
    assert_eq!(a, b);
    // Full key=val grammar, including a threshold × Erlang cross-product.
    let (ok, stdout, stderr) = loadsteal(&[
        "solve",
        "--model",
        "lambda=0.8,policy=steal,T=4,d=1,k=1,service=erlang:10",
    ]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("erlang-stage"), "{stdout}");
}

#[test]
fn simulate_takes_a_model_spec_and_rejects_legacy_knob_conflicts() {
    let (ok, stdout, stderr) = loadsteal(&[
        "simulate",
        "--n",
        "16",
        "--model",
        "threshold,lambda=0.5",
        "--runs",
        "1",
        "--horizon",
        "300",
        "--warmup",
        "30",
    ]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("mean time in system"), "{stdout}");
    let (ok, _, stderr) = loadsteal(&[
        "simulate",
        "--n",
        "16",
        "--model",
        "simple-ws",
        "--policy",
        "none",
    ]);
    assert!(!ok);
    assert!(stderr.contains("conflict"), "{stderr}");
}
