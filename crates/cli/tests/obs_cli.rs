//! End-to-end tests of the observability surface of the `loadsteal`
//! binary: `--trace`, `--metrics-json`, `--quiet`, and the shape of the
//! emitted `loadsteal.run.v1` documents.
//!
//! The `--metrics-json` checks parse the output with a tiny
//! recursive-descent JSON parser (below) rather than substring
//! matching, so malformed escaping or nesting fails loudly.

use std::collections::BTreeMap;
use std::process::{Command, Output};

fn loadsteal(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_loadsteal"))
        .args(args)
        .output()
        .expect("spawn loadsteal binary")
}

fn stdout(out: &Output) -> String {
    String::from_utf8(out.stdout.clone()).expect("stdout is UTF-8")
}

fn stderr(out: &Output) -> String {
    String::from_utf8(out.stderr.clone()).expect("stderr is UTF-8")
}

// ---------------------------------------------------------------------
// A minimal JSON parser — just enough to validate the run documents.

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    fn get(&self, key: &str) -> &Json {
        match self {
            Json::Obj(m) => m
                .get(key)
                .unwrap_or_else(|| panic!("missing key {key:?} in {m:?}")),
            other => panic!("expected object with key {key:?}, got {other:?}"),
        }
    }

    fn obj(&self) -> &BTreeMap<String, Json> {
        match self {
            Json::Obj(m) => m,
            other => panic!("expected object, got {other:?}"),
        }
    }

    fn num(&self) -> f64 {
        match self {
            Json::Num(v) => *v,
            other => panic!("expected number, got {other:?}"),
        }
    }

    fn str(&self) -> &str {
        match self {
            Json::Str(s) => s,
            other => panic!("expected string, got {other:?}"),
        }
    }
}

struct Parser<'a> {
    s: &'a [u8],
    i: usize,
}

fn parse_json(s: &str) -> Json {
    let mut p = Parser {
        s: s.as_bytes(),
        i: 0,
    };
    let v = p.value();
    p.skip_ws();
    assert_eq!(p.i, p.s.len(), "trailing garbage after JSON value in {s:?}");
    v
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.i < self.s.len() && self.s[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn peek(&mut self) -> u8 {
        self.skip_ws();
        *self.s.get(self.i).expect("unexpected end of JSON")
    }

    fn eat(&mut self, b: u8) {
        assert_eq!(self.peek(), b, "at byte {}", self.i);
        self.i += 1;
    }

    fn lit(&mut self, word: &str, v: Json) -> Json {
        self.skip_ws();
        assert!(
            self.s[self.i..].starts_with(word.as_bytes()),
            "at byte {}",
            self.i
        );
        self.i += word.len();
        v
    }

    fn value(&mut self) -> Json {
        match self.peek() {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Json::Str(self.string()),
            b't' => self.lit("true", Json::Bool(true)),
            b'f' => self.lit("false", Json::Bool(false)),
            b'n' => self.lit("null", Json::Null),
            _ => self.number(),
        }
    }

    fn object(&mut self) -> Json {
        self.eat(b'{');
        let mut m = BTreeMap::new();
        if self.peek() == b'}' {
            self.i += 1;
            return Json::Obj(m);
        }
        loop {
            self.skip_ws();
            let k = self.string();
            self.eat(b':');
            m.insert(k, self.value());
            match self.peek() {
                b',' => self.i += 1,
                b'}' => {
                    self.i += 1;
                    return Json::Obj(m);
                }
                other => panic!("expected ',' or '}}', got {:?}", other as char),
            }
        }
    }

    fn array(&mut self) -> Json {
        self.eat(b'[');
        let mut v = Vec::new();
        if self.peek() == b']' {
            self.i += 1;
            return Json::Arr(v);
        }
        loop {
            v.push(self.value());
            match self.peek() {
                b',' => self.i += 1,
                b']' => {
                    self.i += 1;
                    return Json::Arr(v);
                }
                other => panic!("expected ',' or ']', got {:?}", other as char),
            }
        }
    }

    fn string(&mut self) -> String {
        self.eat(b'"');
        let mut out = String::new();
        loop {
            let b = *self.s.get(self.i).expect("unterminated string");
            self.i += 1;
            match b {
                b'"' => return out,
                b'\\' => {
                    let esc = self.s[self.i];
                    self.i += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = std::str::from_utf8(&self.s[self.i..self.i + 4]).unwrap();
                            self.i += 4;
                            let code = u32::from_str_radix(hex, 16).expect("bad \\u escape");
                            out.push(char::from_u32(code).expect("surrogates unsupported"));
                        }
                        other => panic!("bad escape \\{:?}", other as char),
                    }
                }
                // The CLI never emits multi-byte UTF-8 in these
                // documents; treating bytes as chars is fine here.
                _ => out.push(b as char),
            }
        }
    }

    fn number(&mut self) -> Json {
        self.skip_ws();
        let start = self.i;
        while self.i < self.s.len()
            && matches!(
                self.s[self.i],
                b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'
            )
        {
            self.i += 1;
        }
        let text = std::str::from_utf8(&self.s[start..self.i]).unwrap();
        Json::Num(
            text.parse()
                .unwrap_or_else(|_| panic!("bad number {text:?}")),
        )
    }
}

#[test]
fn json_parser_self_check() {
    let v = parse_json(r#"{"a":[1,2.5,-3e2],"b":"xA\n","c":{"d":true,"e":null}}"#);
    assert_eq!(
        v.get("a"),
        &Json::Arr(vec![Json::Num(1.0), Json::Num(2.5), Json::Num(-300.0)])
    );
    assert_eq!(v.get("b").str(), "xA\n");
    assert_eq!(v.get("c").get("d"), &Json::Bool(true));
    assert_eq!(v.get("c").get("e"), &Json::Null);
}

// ---------------------------------------------------------------------
// The tests proper.

const QUICK_SIM: &[&str] = &[
    "simulate",
    "--n",
    "16",
    "--lambda",
    "0.7",
    "--policy",
    "simple",
    "--runs",
    "2",
    "--horizon",
    "500",
    "--warmup",
    "50",
    "--seed",
    "7",
];

fn quick_sim_with<'a>(extra: &[&'a str]) -> Vec<&'a str> {
    let mut v = QUICK_SIM.to_vec();
    v.extend_from_slice(extra);
    v
}

#[test]
fn metrics_json_stdout_is_one_parseable_document_with_both_layers() {
    let out = loadsteal(&quick_sim_with(&["--metrics-json", "-"]));
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    // Exactly one line of JSON on stdout; the narrative went to stderr.
    assert_eq!(text.trim_end().lines().count(), 1, "{text}");
    assert!(
        stderr(&out).contains("mean time in system"),
        "{}",
        stderr(&out)
    );

    let doc = parse_json(text.trim_end());
    assert_eq!(doc.get("schema").str(), "loadsteal.run.v1");

    let manifest = doc.get("manifest");
    assert_eq!(manifest.get("seed").num(), 7.0);
    assert!(manifest.get("command").str().starts_with("simulate"));
    assert_eq!(manifest.get("config").get("n").num(), 16.0);
    assert_eq!(manifest.get("config").get("lambda").num(), 0.7);

    // Simulator AND solver counters in the same report.
    let counters = doc.get("metrics").get("counters").obj();
    assert!(counters["sim.arrivals"].num() > 0.0);
    assert!(counters["sim.completions"].num() > 0.0);
    assert!(counters["sim.steal_attempts"].num() > 0.0);
    assert_eq!(counters["sim.replicates"].num(), 2.0);
    assert!(counters["solver.steps_accepted"].num() > 0.0);
    assert_eq!(counters["solver.integrations"].num(), 1.0);

    let gauges = doc.get("metrics").get("gauges").obj();
    assert!(gauges["sim.mean_sojourn"].num() > 1.0);
    assert!(gauges["solver.mean_time_in_system"].num() > 1.0);

    let hist = doc.get("metrics").get("histograms").get("sim.run_events");
    assert_eq!(hist.get("count").num(), 2.0);
}

#[test]
fn metrics_json_writes_to_a_file() {
    let path = std::env::temp_dir().join("loadsteal_cli_test_metrics.json");
    let path_s = path.to_str().unwrap();
    let out = loadsteal(&quick_sim_with(&["--metrics-json", path_s]));
    assert!(out.status.success(), "{}", stderr(&out));
    // File destination keeps the narrative on stdout.
    assert!(
        stdout(&out).contains("mean time in system"),
        "{}",
        stdout(&out)
    );
    let text = std::fs::read_to_string(&path).expect("metrics file written");
    let doc = parse_json(text.trim_end());
    assert_eq!(doc.get("schema").str(), "loadsteal.run.v1");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn trace_writes_valid_ndjson() {
    let path = std::env::temp_dir().join("loadsteal_cli_test_trace.ndjson");
    let path_s = path.to_str().unwrap();
    let out = loadsteal(&quick_sim_with(&["--trace", path_s]));
    assert!(out.status.success(), "{}", stderr(&out));
    let text = std::fs::read_to_string(&path).expect("trace file written");
    let mut kinds = std::collections::BTreeSet::new();
    let mut lines = 0usize;
    for line in text.lines() {
        let ev = parse_json(line);
        kinds.insert(ev.get("ev").str().to_owned());
        lines += 1;
    }
    assert!(lines > 100, "suspiciously short trace: {lines} lines");
    for expected in [
        "solver_step",
        "arrival",
        "completion",
        "steal_attempt",
        "replicate_done",
    ] {
        assert!(
            kinds.contains(expected),
            "no {expected:?} events in {kinds:?}"
        );
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn quiet_silences_the_narrative() {
    let out = loadsteal(&quick_sim_with(&["--quiet"]));
    assert!(out.status.success(), "{}", stderr(&out));
    assert_eq!(stdout(&out), "", "expected no narrative");

    // --quiet composes with --metrics-json -: JSON only, nothing else.
    let out = loadsteal(&quick_sim_with(&["--quiet", "--metrics-json", "-"]));
    assert!(out.status.success(), "{}", stderr(&out));
    assert_eq!(stderr(&out), "", "narrative should be silenced");
    let doc = parse_json(stdout(&out).trim_end());
    assert_eq!(doc.get("schema").str(), "loadsteal.run.v1");
}

#[test]
fn trace_to_stdout_is_pure_ndjson() {
    let out = loadsteal(&quick_sim_with(&["--quiet", "--trace", "-"]));
    assert!(out.status.success(), "{}", stderr(&out));
    assert_eq!(stderr(&out), "", "narrative should be silenced");
    let text = stdout(&out);
    let mut lines = 0usize;
    for line in text.lines() {
        let ev = parse_json(line);
        ev.get("ev").str();
        lines += 1;
    }
    assert!(lines > 100, "suspiciously short trace: {lines} lines");

    // Without --quiet the narrative moves to stderr, keeping stdout
    // machine-readable.
    let out = loadsteal(&quick_sim_with(&["--trace", "-"]));
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(
        stderr(&out).contains("mean time in system"),
        "{}",
        stderr(&out)
    );
    parse_json(stdout(&out).lines().next().expect("ndjson on stdout"));
}

#[test]
fn trace_and_metrics_cannot_both_claim_stdout() {
    let out = loadsteal(&quick_sim_with(&["--trace", "-", "--metrics-json", "-"]));
    assert!(!out.status.success());
    assert!(stderr(&out).contains("stdout"), "{}", stderr(&out));
}

#[test]
fn metrics_json_carries_sojourn_quantile_sketch() {
    let out = loadsteal(&quick_sim_with(&["--quiet", "--metrics-json", "-"]));
    assert!(out.status.success(), "{}", stderr(&out));
    let doc = parse_json(stdout(&out).trim_end());
    let sketch = doc.get("metrics").get("sketches").get("sim.sojourn_time");
    assert!(sketch.get("count").num() > 100.0);
    let (p50, p90, p99) = (
        sketch.get("p50").num(),
        sketch.get("p90").num(),
        sketch.get("p99").num(),
    );
    assert!(p50 > 0.0 && p50 <= p90 && p90 <= p99, "{p50} {p90} {p99}");
    // The sketch's mean agrees with the directly measured mean sojourn.
    let mean = doc.get("metrics").get("gauges").obj()["sim.mean_sojourn"].num();
    assert!(
        (sketch.get("mean").num() - mean).abs() / mean < 0.05,
        "sketch mean {} vs gauge {}",
        sketch.get("mean").num(),
        mean
    );
    // Histogram quantiles ride along on every non-empty histogram.
    let hist = doc.get("metrics").get("histograms").get("sim.run_events");
    assert!(hist.get("p50").num() > 0.0);
}

#[test]
fn report_renders_sim_vs_mean_field_table() {
    let path = std::env::temp_dir().join("loadsteal_cli_test_report.ndjson");
    let path_s = path.to_str().unwrap();
    // One run so the trace replays into a consistent timeline.
    let out = loadsteal(&[
        "simulate",
        "--n",
        "16",
        "--lambda",
        "0.7",
        "--runs",
        "1",
        "--horizon",
        "2000",
        "--warmup",
        "200",
        "--seed",
        "7",
        "--trace",
        path_s,
    ]);
    assert!(out.status.success(), "{}", stderr(&out));

    let out = loadsteal(&["report", path_s, "--warmup", "200"]);
    assert!(out.status.success(), "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("sim vs mean-field"), "{text}");
    assert!(text.contains("tail ratio"), "{text}");
    assert!(text.contains("mean sojourn time"), "{text}");
    assert!(text.contains("rel. err"), "{text}");
    assert!(!text.contains("WARNING"), "consistent trace: {text}");

    // A corrupted trace fails strict mode but recovers with --lossy.
    let text = std::fs::read_to_string(&path).unwrap();
    let mangled: String = text
        .lines()
        .enumerate()
        .map(|(i, l)| {
            if i == 3 {
                "not json\n".to_string()
            } else {
                format!("{l}\n")
            }
        })
        .collect();
    std::fs::write(&path, mangled).unwrap();
    let out = loadsteal(&["report", path_s, "--warmup", "200"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("line 4"), "{}", stderr(&out));
    let out = loadsteal(&["report", path_s, "--warmup", "200", "--lossy"]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(stderr(&out).contains("skipped 1"), "{}", stderr(&out));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn serve_exposes_prometheus_text_on_a_live_listener() {
    use std::io::{BufRead, BufReader, Read, Write};

    let mut child = Command::new(env!("CARGO_BIN_EXE_loadsteal"))
        .args([
            "serve",
            "--prom-addr",
            "127.0.0.1:0",
            "--n",
            "8",
            "--lambda",
            "0.6",
            "--runs",
            "1",
            "--horizon",
            "2000",
            "--warmup",
            "200",
            "--scrapes",
            "1",
            "--quiet",
        ])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("spawn loadsteal serve");

    // The first stdout line announces the bound address.
    let mut child_out = BufReader::new(child.stdout.take().unwrap());
    let mut line = String::new();
    child_out.read_line(&mut line).expect("address line");
    let addr = line
        .split("http://")
        .nth(1)
        .and_then(|s| s.split("/metrics").next())
        .unwrap_or_else(|| panic!("no address in {line:?}"))
        .to_string();

    let mut stream = std::net::TcpStream::connect(&addr).expect("connect to scrape endpoint");
    stream
        .write_all(b"GET /metrics HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n")
        .unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");

    assert!(
        response.starts_with("HTTP/1.1 200 OK\r\n"),
        "{}",
        &response[..response.len().min(200)]
    );
    assert!(response.contains("Content-Type: text/plain; version=0.0.4"));
    let body = response
        .split("\r\n\r\n")
        .nth(1)
        .expect("response carries a body");
    // Scrape-style validation: every line is a comment or `name value`.
    let mut samples = 0usize;
    for l in body.lines() {
        if l.is_empty() || l.starts_with('#') {
            continue;
        }
        let (name, value) = l
            .rsplit_once(' ')
            .unwrap_or_else(|| panic!("bad line {l:?}"));
        assert!(
            name.chars().next().unwrap().is_ascii_alphabetic() || name.starts_with('_'),
            "bad metric name in {l:?}"
        );
        assert!(
            value == "+Inf" || value == "-Inf" || value == "NaN" || value.parse::<f64>().is_ok(),
            "bad value in {l:?}"
        );
        samples += 1;
    }
    assert!(samples > 5, "thin exposition:\n{body}");
    assert!(
        body.contains("loadsteal_sim_arrivals_total"),
        "live sim counters missing:\n{body}"
    );

    let status = child.wait().expect("serve exits after --scrapes 1");
    assert!(status.success());
}

#[test]
fn unknown_flags_are_rejected_and_obs_flags_are_known() {
    let out = loadsteal(&quick_sim_with(&["--bogus", "1"]));
    assert!(!out.status.success());
    let err = stderr(&out);
    assert!(err.contains("unknown flag --bogus"), "{err}");
    // The observability flags are listed as known.
    assert!(err.contains("metrics-json"), "{err}");
}

#[test]
fn solve_also_emits_a_run_document() {
    let out = loadsteal(&[
        "solve",
        "--model",
        "simple",
        "--lambda",
        "0.9",
        "--metrics-json",
        "-",
    ]);
    assert!(out.status.success(), "{}", stderr(&out));
    let doc = parse_json(stdout(&out).trim_end());
    let counters = doc.get("metrics").get("counters").obj();
    assert!(counters["solver.steps_accepted"].num() > 0.0);
    let gauges = doc.get("metrics").get("gauges").obj();
    assert!(gauges["solver.residual"].num() < 1e-6);
}
