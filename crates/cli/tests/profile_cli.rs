//! End-to-end tests of the span-profiler surface: `--profile <out>`
//! Chrome trace-event / folded-stack exports (valid on every
//! subcommand) and the `loadsteal profile <command>` self-time report.

use std::path::PathBuf;
use std::process::{Command, Output};

use loadsteal_obs::json::{self, JsonValue};

fn loadsteal_in(dir: &std::path::Path, args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_loadsteal"))
        .args(args)
        .current_dir(dir)
        .output()
        .expect("spawn loadsteal binary")
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "loadsteal-profile-test-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

#[test]
fn profile_flag_exports_a_valid_chrome_trace() {
    let dir = scratch_dir("chrome");
    let out = loadsteal_in(
        &dir,
        &[
            "simulate",
            "--model",
            "basic",
            "--n",
            "32",
            "--horizon",
            "200",
            "--runs",
            "1",
            "--profile",
            "p.json",
            "--quiet",
        ],
    );
    assert!(
        out.status.success(),
        "simulate --profile succeeds: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let body = std::fs::read_to_string(dir.join("p.json")).expect("profile written");
    let parsed = json::parse(&body).expect("profile is valid JSON");
    let JsonValue::Arr(events) = parsed else {
        panic!("Chrome trace is a JSON array, got {body:.120}");
    };
    assert!(!events.is_empty(), "trace has span instances");
    let mut names = Vec::new();
    for ev in &events {
        assert_eq!(
            ev.get("ph").and_then(|v| v.as_str()),
            Some("X"),
            "complete events"
        );
        assert_eq!(ev.get("cat").and_then(|v| v.as_str()), Some("loadsteal"));
        assert!(ev.get("ts").and_then(|v| v.as_f64()).is_some(), "ts");
        assert!(ev.get("dur").and_then(|v| v.as_f64()).is_some(), "dur");
        assert!(ev.get("pid").and_then(|v| v.as_u64()).is_some(), "pid");
        assert!(ev.get("tid").and_then(|v| v.as_u64()).is_some(), "tid");
        names.push(ev.get("name").and_then(|v| v.as_str()).expect("name"));
    }
    for expected in ["cli.simulate", "sim.run", "sim.arrival", "sim.completion"] {
        assert!(
            names.contains(&expected),
            "trace names a {expected} span: {names:?}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn profile_flag_with_folded_extension_writes_folded_stacks() {
    let dir = scratch_dir("folded");
    let out = loadsteal_in(
        &dir,
        &[
            "solve",
            "--model",
            "basic",
            "--profile",
            "p.folded",
            "--quiet",
        ],
    );
    assert!(
        out.status.success(),
        "solve --profile succeeds: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let body = std::fs::read_to_string(dir.join("p.folded")).expect("folded written");
    let lines: Vec<&str> = body.lines().collect();
    assert!(!lines.is_empty(), "folded output has stacks");
    for line in &lines {
        // `parent;child self_weight` — weight is a non-negative integer.
        let (stack, weight) = line.rsplit_once(' ').expect("stack <space> weight");
        assert!(!stack.is_empty());
        weight.parse::<u64>().expect("integer weight");
    }
    assert!(
        lines.iter().any(|l| l.starts_with("cli.solve")),
        "root frame is the dispatched command: {lines:?}"
    );
    assert!(
        lines
            .iter()
            .any(|l| l.contains("ode.integrate;ode.step_attempt")),
        "solver hot path appears as a nested frame: {lines:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn profile_command_prints_a_self_time_table_summing_to_wall() {
    let dir = scratch_dir("report");
    let out = loadsteal_in(
        &dir,
        &[
            "profile",
            "simulate",
            "--model",
            "basic",
            "--n",
            "64",
            "--horizon",
            "1000",
            "--runs",
            "2",
            "--quiet",
        ],
    );
    assert!(
        out.status.success(),
        "profile simulate succeeds: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).expect("stdout is UTF-8");
    let header = stdout
        .lines()
        .find(|l| l.starts_with("PROFILE"))
        .expect("PROFILE header line");
    // `PROFILE  wall X ms, span self-time total Y ms (Z% of wall)` —
    // the span self-times must account for at least the command's wall
    // time (no unattributed gaps). Replication now runs on the real
    // work-stealing pool, so the two `sim.run` spans execute on worker
    // threads concurrently with the main thread's root span: the total
    // legitimately *exceeds* wall, bounded by root + one span per run
    // (~300% here) plus scheduling slack.
    let pct: f64 = header
        .split('(')
        .nth(1)
        .and_then(|t| t.split('%').next())
        .expect("coverage percentage")
        .parse()
        .expect("percentage parses");
    assert!(
        (95.0..=320.0).contains(&pct),
        "span self-time covers wall without over-counting beyond the \
         root + 2 parallel runs: {header}"
    );
    for col in ["SPAN", "CALLS", "SELF ms", "P99 us"] {
        assert!(stdout.contains(col), "table column {col}: {stdout}");
    }
    assert!(
        stdout.contains("SIM PHASES"),
        "per-phase events/sec section: {stdout}"
    );
    assert!(stdout.contains("sim.arrival") && stdout.contains("ev/s"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn profile_command_without_inner_command_is_a_clean_error() {
    let dir = scratch_dir("noinner");
    let out = loadsteal_in(&dir, &["profile"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("loadsteal profile <command>"),
        "usage hint: {stderr}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn trace_carries_span_summaries_when_profiling() {
    let dir = scratch_dir("tracespans");
    let out = loadsteal_in(
        &dir,
        &[
            "simulate",
            "--model",
            "basic",
            "--n",
            "16",
            "--horizon",
            "100",
            "--runs",
            "1",
            "--trace",
            "t.ndjson",
            "--profile",
            "p.json",
            "--quiet",
        ],
    );
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let bytes = std::fs::read(dir.join("t.ndjson")).expect("trace written");
    let parsed = loadsteal_trace::read_bytes(&bytes, loadsteal_trace::ReadMode::Strict)
        .expect("trace with span summaries parses strictly");
    assert!(
        parsed.spans.iter().any(|s| s.path.contains("sim.run")),
        "span summary records land in the trace: {:?}",
        parsed.spans.iter().map(|s| &s.path).collect::<Vec<_>>()
    );
    let _ = std::fs::remove_dir_all(&dir);
}
