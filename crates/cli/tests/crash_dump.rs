//! Child-process test of the crash-safe flight recorder: abort a run
//! mid-simulation (via the hidden `LOADSTEAL_PANIC_AFTER_EVENTS` fault
//! injection) and assert that the panic hook wrote a strict-parseable
//! `loadsteal-crash-<pid>.ndjson` dump ending with the panic record.

use std::path::PathBuf;
use std::process::Command;

use loadsteal_trace::{read_bytes, ReadMode};

/// A fresh scratch directory for the child's working directory, so the
/// crash dump lands somewhere we control and concurrent tests cannot
/// collide (the dump name embeds the *child's* pid).
fn scratch_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("loadsteal-crash-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

#[test]
fn aborted_simulation_leaves_a_strictly_parseable_crash_dump() {
    let dir = scratch_dir("abort");
    let out = Command::new(env!("CARGO_BIN_EXE_loadsteal"))
        .args([
            "simulate",
            "--model",
            "basic",
            "--n",
            "32",
            "--horizon",
            "500",
            "--runs",
            "1",
            "--flight-recorder",
            "--quiet",
        ])
        .env("LOADSTEAL_PANIC_AFTER_EVENTS", "400")
        .current_dir(&dir)
        .output()
        .expect("spawn loadsteal binary");
    assert!(
        !out.status.success(),
        "injected panic should fail the run: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("flight recorder"),
        "panic hook should announce the dump on stderr: {stderr}"
    );

    let dump = std::fs::read_dir(&dir)
        .expect("read scratch dir")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .find(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("loadsteal-crash-") && n.ends_with(".ndjson"))
        })
        .expect("crash dump file exists in the child's cwd");

    let bytes = std::fs::read(&dump).expect("read crash dump");
    let parsed = read_bytes(&bytes, ReadMode::Strict).expect("crash dump parses strictly");

    // The dump carries the run's header, a window of recent events, and
    // exactly one terminal panic record.
    let header = parsed.header.expect("dump starts with the trace header");
    assert_eq!(header.n, Some(32));
    assert!(
        !parsed.events.is_empty(),
        "dump should hold the recent-event window"
    );
    assert_eq!(parsed.panics.len(), 1, "exactly one panic record");
    let panic = &parsed.panics[0];
    assert!(
        panic.message.contains("injected crash after 400"),
        "panic record carries the message: {:?}",
        panic.message
    );
    assert!(panic.buffered > 0, "panic record counts buffered events");

    // The panic record is the *last* line — the dump ends with it.
    let last_line = bytes
        .split(|&b| b == b'\n')
        .rfind(|l| !l.is_empty())
        .expect("dump has lines");
    let last_line = std::str::from_utf8(last_line).expect("last line is UTF-8");
    assert!(
        last_line.starts_with("{\"ev\":\"panic\""),
        "dump ends with the panic event: {last_line}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn clean_run_with_flight_recorder_leaves_no_dump() {
    let dir = scratch_dir("clean");
    let out = Command::new(env!("CARGO_BIN_EXE_loadsteal"))
        .args([
            "simulate",
            "--model",
            "basic",
            "--n",
            "16",
            "--horizon",
            "100",
            "--runs",
            "1",
            "--flight-recorder",
            "--quiet",
        ])
        .current_dir(&dir)
        .output()
        .expect("spawn loadsteal binary");
    assert!(
        out.status.success(),
        "clean run succeeds: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let dumps: Vec<_> = std::fs::read_dir(&dir)
        .expect("read scratch dir")
        .filter_map(|e| e.ok())
        .filter(|e| {
            e.file_name()
                .to_str()
                .is_some_and(|n| n.starts_with("loadsteal-crash-"))
        })
        .collect();
    assert!(dumps.is_empty(), "no crash dump without a panic: {dumps:?}");
    let _ = std::fs::remove_dir_all(&dir);
}
