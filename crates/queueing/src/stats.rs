//! Online statistics for simulation output analysis.

/// Numerically stable (Welford) accumulator for mean and variance.
///
/// ```
/// use loadsteal_queueing::OnlineStats;
/// let stats: OnlineStats = [2.0, 4.0, 6.0].into_iter().collect();
/// assert_eq!(stats.mean(), 4.0);
/// assert_eq!(stats.variance(), 4.0);
/// let ci = stats.confidence_interval(0.95);
/// assert!(ci.contains(4.0));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one observation.
    #[inline]
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merge another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &Self) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn std_err(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.std_dev() / (self.count as f64).sqrt()
        }
    }

    /// Smallest observation (`+∞` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-∞` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// A normal-approximation confidence interval for the mean.
    ///
    /// `level` ∈ {0.90, 0.95, 0.99} pick the matching z-score; other
    /// levels fall back to 0.95. For the replication counts used here
    /// (≥ 3 runs × thousands of tasks) the normal approximation is fine.
    pub fn confidence_interval(&self, level: f64) -> ConfidenceInterval {
        let z = if (level - 0.90).abs() < 1e-9 {
            1.6449
        } else if (level - 0.99).abs() < 1e-9 {
            2.5758
        } else {
            1.96
        };
        let half = z * self.std_err();
        ConfidenceInterval {
            mean: self.mean(),
            half_width: half,
        }
    }
}

impl FromIterator<f64> for OnlineStats {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = Self::new();
        for x in iter {
            s.push(x);
        }
        s
    }
}

/// A symmetric confidence interval around a sample mean.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Point estimate.
    pub mean: f64,
    /// Half-width of the interval.
    pub half_width: f64,
}

impl ConfidenceInterval {
    /// Lower endpoint.
    pub fn lo(&self) -> f64 {
        self.mean - self.half_width
    }

    /// Upper endpoint.
    pub fn hi(&self) -> f64 {
        self.mean + self.half_width
    }

    /// Whether the interval contains `x`.
    pub fn contains(&self, x: f64) -> bool {
        x >= self.lo() && x <= self.hi()
    }
}

/// Time-weighted average of a piecewise-constant signal, e.g. the queue
/// length of a processor over simulated time.
#[derive(Debug, Clone, Default)]
pub struct TimeWeighted {
    last_t: Option<f64>,
    last_value: f64,
    integral: f64,
    duration: f64,
}

impl TimeWeighted {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record that the signal changed to `value` at time `t`.
    ///
    /// The signal is assumed to have held its previous value since the
    /// previous call; times must be non-decreasing.
    pub fn record(&mut self, t: f64, value: f64) {
        if let Some(t0) = self.last_t {
            debug_assert!(t >= t0, "TimeWeighted: time went backwards");
            self.integral += self.last_value * (t - t0);
            self.duration += t - t0;
        }
        self.last_t = Some(t);
        self.last_value = value;
    }

    /// Close the window at time `t` without changing the value.
    pub fn finish(&mut self, t: f64) {
        self.record(t, self.last_value);
    }

    /// The time-weighted mean so far (0 if no time has elapsed).
    pub fn mean(&self) -> f64 {
        if self.duration > 0.0 {
            self.integral / self.duration
        } else {
            0.0
        }
    }

    /// Total time covered.
    pub fn duration(&self) -> f64 {
        self.duration
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_naive_moments() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0, -1.0];
        let s: OnlineStats = xs.iter().copied().collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((s.mean() - mean).abs() < 1e-12);
        assert!((s.variance() - var).abs() < 1e-12);
        assert_eq!(s.min(), -1.0);
        assert_eq!(s.max(), 5.0);
        assert_eq!(s.count(), 6);
    }

    #[test]
    fn merge_equals_single_pass() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64 * 0.37).sin()).collect();
        let whole: OnlineStats = xs.iter().copied().collect();
        let mut left: OnlineStats = xs[..37].iter().copied().collect();
        let right: OnlineStats = xs[37..].iter().copied().collect();
        left.merge(&right);
        assert!((left.mean() - whole.mean()).abs() < 1e-12);
        assert!((left.variance() - whole.variance()).abs() < 1e-12);
        assert_eq!(left.count(), whole.count());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s: OnlineStats = [1.0, 2.0].into_iter().collect();
        let before = s.clone();
        s.merge(&OnlineStats::new());
        assert_eq!(s, before);
        let mut empty = OnlineStats::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn confidence_interval_shrinks_with_n() {
        let small: OnlineStats = (0..10).map(|i| i as f64).collect();
        let large: OnlineStats = (0..1000).map(|i| (i % 10) as f64).collect();
        assert!(
            large.confidence_interval(0.95).half_width < small.confidence_interval(0.95).half_width
        );
    }

    #[test]
    fn confidence_levels_are_ordered() {
        let s: OnlineStats = (0..100).map(|i| (i as f64).sqrt()).collect();
        let w90 = s.confidence_interval(0.90).half_width;
        let w95 = s.confidence_interval(0.95).half_width;
        let w99 = s.confidence_interval(0.99).half_width;
        assert!(w90 < w95 && w95 < w99);
    }

    #[test]
    fn interval_contains_its_mean() {
        let s: OnlineStats = [2.0, 4.0, 6.0].into_iter().collect();
        let ci = s.confidence_interval(0.95);
        assert!(ci.contains(ci.mean));
        assert!((ci.lo() + ci.hi()) / 2.0 - ci.mean < 1e-12);
    }

    #[test]
    fn time_weighted_average_of_step_signal() {
        let mut tw = TimeWeighted::new();
        tw.record(0.0, 1.0); // value 1 on [0, 2)
        tw.record(2.0, 3.0); // value 3 on [2, 3)
        tw.finish(3.0);
        // (1 * 2 + 3 * 1) / 3 = 5/3
        assert!((tw.mean() - 5.0 / 3.0).abs() < 1e-12);
        assert_eq!(tw.duration(), 3.0);
    }

    #[test]
    fn time_weighted_empty_is_zero() {
        assert_eq!(TimeWeighted::new().mean(), 0.0);
    }
}
