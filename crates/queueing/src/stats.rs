//! Online statistics for simulation output analysis.

/// Numerically stable (Welford) accumulator for mean and variance.
///
/// ```
/// use loadsteal_queueing::OnlineStats;
/// let stats: OnlineStats = [2.0, 4.0, 6.0].into_iter().collect();
/// assert_eq!(stats.mean(), 4.0);
/// assert_eq!(stats.variance(), 4.0);
/// let ci = stats.confidence_interval(0.95);
/// assert!(ci.contains(4.0));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one observation.
    #[inline]
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merge another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &Self) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn std_err(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.std_dev() / (self.count as f64).sqrt()
        }
    }

    /// Smallest observation (`+∞` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-∞` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// A normal-approximation confidence interval for the mean.
    ///
    /// `level` ∈ {0.90, 0.95, 0.99} pick the matching z-score; other
    /// levels fall back to 0.95. For the replication counts used here
    /// (≥ 3 runs × thousands of tasks) the normal approximation is fine.
    pub fn confidence_interval(&self, level: f64) -> ConfidenceInterval {
        ConfidenceInterval {
            mean: self.mean(),
            half_width: z_quantile(level) * self.std_err(),
        }
    }

    /// A Student-t confidence interval for the mean: the right choice
    /// when the number of observations is small (a handful of
    /// replications, a few dozen batch means), where the z interval is
    /// noticeably anti-conservative. Falls back to the z interval above
    /// 30 degrees of freedom, where the two agree to within ~2%.
    pub fn t_confidence_interval(&self, level: f64) -> ConfidenceInterval {
        let dof = self.count.saturating_sub(1);
        ConfidenceInterval {
            mean: self.mean(),
            half_width: t_quantile(level, dof) * self.std_err(),
        }
    }
}

fn z_quantile(level: f64) -> f64 {
    if (level - 0.90).abs() < 1e-9 {
        1.6449
    } else if (level - 0.99).abs() < 1e-9 {
        2.5758
    } else {
        1.96
    }
}

/// Two-sided Student-t critical value for `level` ∈ {0.90, 0.95, 0.99}
/// at `dof` degrees of freedom (tabulated for 1..=30, z beyond).
fn t_quantile(level: f64, dof: u64) -> f64 {
    #[rustfmt::skip]
    const T90: [f64; 30] = [
        6.314, 2.920, 2.353, 2.132, 2.015, 1.943, 1.895, 1.860, 1.833, 1.812,
        1.796, 1.782, 1.771, 1.761, 1.753, 1.746, 1.740, 1.734, 1.729, 1.725,
        1.721, 1.717, 1.714, 1.711, 1.708, 1.706, 1.703, 1.701, 1.699, 1.697,
    ];
    #[rustfmt::skip]
    const T95: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
        2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
        2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
    ];
    #[rustfmt::skip]
    const T99: [f64; 30] = [
        63.657, 9.925, 5.841, 4.604, 4.032, 3.707, 3.499, 3.355, 3.250, 3.169,
        3.106, 3.055, 3.012, 2.977, 2.947, 2.921, 2.898, 2.878, 2.861, 2.845,
        2.831, 2.819, 2.807, 2.797, 2.787, 2.779, 2.771, 2.763, 2.756, 2.750,
    ];
    if dof == 0 {
        // A single observation has no spread estimate; std_err is 0
        // anyway, so the factor is moot. Return the widest tabulated.
        return t_quantile(level, 1);
    }
    let table = if (level - 0.90).abs() < 1e-9 {
        &T90
    } else if (level - 0.99).abs() < 1e-9 {
        &T99
    } else {
        &T95
    };
    if dof <= 30 {
        table[(dof - 1) as usize]
    } else {
        z_quantile(level)
    }
}

impl FromIterator<f64> for OnlineStats {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = Self::new();
        for x in iter {
            s.push(x);
        }
        s
    }
}

/// A symmetric confidence interval around a sample mean.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Point estimate.
    pub mean: f64,
    /// Half-width of the interval.
    pub half_width: f64,
}

impl ConfidenceInterval {
    /// Lower endpoint.
    pub fn lo(&self) -> f64 {
        self.mean - self.half_width
    }

    /// Upper endpoint.
    pub fn hi(&self) -> f64 {
        self.mean + self.half_width
    }

    /// Whether the interval contains `x`.
    pub fn contains(&self, x: f64) -> bool {
        x >= self.lo() && x <= self.hi()
    }
}

/// Time-weighted average of a piecewise-constant signal, e.g. the queue
/// length of a processor over simulated time.
#[derive(Debug, Clone, Default)]
pub struct TimeWeighted {
    last_t: Option<f64>,
    last_value: f64,
    integral: f64,
    duration: f64,
}

impl TimeWeighted {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record that the signal changed to `value` at time `t`.
    ///
    /// The signal is assumed to have held its previous value since the
    /// previous call; times must be non-decreasing.
    pub fn record(&mut self, t: f64, value: f64) {
        if let Some(t0) = self.last_t {
            debug_assert!(t >= t0, "TimeWeighted: time went backwards");
            self.integral += self.last_value * (t - t0);
            self.duration += t - t0;
        }
        self.last_t = Some(t);
        self.last_value = value;
    }

    /// Close the window at time `t` without changing the value.
    pub fn finish(&mut self, t: f64) {
        self.record(t, self.last_value);
    }

    /// The time-weighted mean so far (0 if no time has elapsed).
    pub fn mean(&self) -> f64 {
        if self.duration > 0.0 {
            self.integral / self.duration
        } else {
            0.0
        }
    }

    /// Total time covered.
    pub fn duration(&self) -> f64 {
        self.duration
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_naive_moments() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0, -1.0];
        let s: OnlineStats = xs.iter().copied().collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((s.mean() - mean).abs() < 1e-12);
        assert!((s.variance() - var).abs() < 1e-12);
        assert_eq!(s.min(), -1.0);
        assert_eq!(s.max(), 5.0);
        assert_eq!(s.count(), 6);
    }

    #[test]
    fn merge_equals_single_pass() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64 * 0.37).sin()).collect();
        let whole: OnlineStats = xs.iter().copied().collect();
        let mut left: OnlineStats = xs[..37].iter().copied().collect();
        let right: OnlineStats = xs[37..].iter().copied().collect();
        left.merge(&right);
        assert!((left.mean() - whole.mean()).abs() < 1e-12);
        assert!((left.variance() - whole.variance()).abs() < 1e-12);
        assert_eq!(left.count(), whole.count());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s: OnlineStats = [1.0, 2.0].into_iter().collect();
        let before = s.clone();
        s.merge(&OnlineStats::new());
        assert_eq!(s, before);
        let mut empty = OnlineStats::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn confidence_interval_shrinks_with_n() {
        let small: OnlineStats = (0..10).map(|i| i as f64).collect();
        let large: OnlineStats = (0..1000).map(|i| (i % 10) as f64).collect();
        assert!(
            large.confidence_interval(0.95).half_width < small.confidence_interval(0.95).half_width
        );
    }

    #[test]
    fn confidence_levels_are_ordered() {
        let s: OnlineStats = (0..100).map(|i| (i as f64).sqrt()).collect();
        let w90 = s.confidence_interval(0.90).half_width;
        let w95 = s.confidence_interval(0.95).half_width;
        let w99 = s.confidence_interval(0.99).half_width;
        assert!(w90 < w95 && w95 < w99);
    }

    #[test]
    fn interval_contains_its_mean() {
        let s: OnlineStats = [2.0, 4.0, 6.0].into_iter().collect();
        let ci = s.confidence_interval(0.95);
        assert!(ci.contains(ci.mean));
        assert!((ci.lo() + ci.hi()) / 2.0 - ci.mean < 1e-12);
    }

    #[test]
    fn t_interval_is_wider_than_z_for_few_observations() {
        let s: OnlineStats = [1.0, 2.0, 3.0, 4.0].into_iter().collect();
        let z = s.confidence_interval(0.95).half_width;
        let t = s.t_confidence_interval(0.95).half_width;
        // t(0.975, 3 dof) = 3.182 vs z = 1.96.
        assert!((t / z - 3.182 / 1.96).abs() < 1e-6, "t {t} vs z {z}");
    }

    #[test]
    fn t_interval_converges_to_z_for_many_observations() {
        let s: OnlineStats = (0..200).map(|i| (i as f64 * 0.61).sin()).collect();
        let z = s.confidence_interval(0.95).half_width;
        let t = s.t_confidence_interval(0.95).half_width;
        assert_eq!(t, z, "beyond 30 dof the t interval falls back to z");
    }

    #[test]
    fn t_interval_levels_are_ordered() {
        let s: OnlineStats = (0..6).map(|i| i as f64).collect();
        let w90 = s.t_confidence_interval(0.90).half_width;
        let w95 = s.t_confidence_interval(0.95).half_width;
        let w99 = s.t_confidence_interval(0.99).half_width;
        assert!(w90 < w95 && w95 < w99);
    }

    #[test]
    fn time_weighted_average_of_step_signal() {
        let mut tw = TimeWeighted::new();
        tw.record(0.0, 1.0); // value 1 on [0, 2)
        tw.record(2.0, 3.0); // value 3 on [2, 3)
        tw.finish(3.0);
        // (1 * 2 + 3 * 1) / 3 = 5/3
        assert!((tw.mean() - 5.0 / 3.0).abs() < 1e-12);
        assert_eq!(tw.duration(), 3.0);
    }

    #[test]
    fn time_weighted_empty_is_zero() {
        assert_eq!(TimeWeighted::new().mean(), 0.0);
    }
}
