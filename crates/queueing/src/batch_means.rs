//! Batch-means confidence intervals for single long runs.
//!
//! Independent replications (the paper's protocol) are the gold
//! standard, but a single long run can also yield a confidence interval
//! if consecutive observations are grouped into batches large enough
//! that batch means are nearly independent. This is the standard
//! batch-means method; the simulator's per-task sojourn streams are a
//! natural fit.

use crate::stats::{ConfidenceInterval, OnlineStats};

/// Accumulates a stream of observations into fixed-size batches and
/// produces a batch-means confidence interval.
#[derive(Debug, Clone)]
pub struct BatchMeans {
    batch_size: usize,
    current: OnlineStats,
    batch_means: OnlineStats,
    overall: OnlineStats,
}

impl BatchMeans {
    /// Create an accumulator with the given batch size (observations per
    /// batch).
    ///
    /// # Panics
    /// Panics if `batch_size == 0`.
    pub fn new(batch_size: usize) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        Self {
            batch_size,
            current: OnlineStats::new(),
            batch_means: OnlineStats::new(),
            overall: OnlineStats::new(),
        }
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.overall.push(x);
        self.current.push(x);
        if self.current.count() as usize >= self.batch_size {
            self.batch_means.push(self.current.mean());
            self.current = OnlineStats::new();
        }
    }

    /// Number of completed batches.
    pub fn batches(&self) -> u64 {
        self.batch_means.count()
    }

    /// Overall mean (all observations, including the partial batch).
    pub fn mean(&self) -> f64 {
        self.overall.mean()
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.overall.count()
    }

    /// Confidence interval from the batch means (Student-t over
    /// batches — batch counts are typically a few dozen, where the
    /// normal approximation is anti-conservative). Returns `None` with
    /// fewer than two complete batches.
    pub fn confidence_interval(&self, level: f64) -> Option<ConfidenceInterval> {
        if self.batch_means.count() < 2 {
            return None;
        }
        Some(self.batch_means.t_confidence_interval(level))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A simple AR(1) sequence: autocorrelated like queueing output.
    fn ar1(n: usize, phi: f64, seed: u64) -> Vec<f64> {
        let mut state = seed | 1;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        };
        let mut x = 0.0;
        (0..n)
            .map(|_| {
                x = phi * x + next();
                x
            })
            .collect()
    }

    #[test]
    fn batches_fill_and_count() {
        let mut bm = BatchMeans::new(10);
        for i in 0..95 {
            bm.push(i as f64);
        }
        assert_eq!(bm.batches(), 9);
        assert_eq!(bm.count(), 95);
        assert!((bm.mean() - 47.0).abs() < 1e-12);
    }

    #[test]
    fn interval_needs_two_batches() {
        let mut bm = BatchMeans::new(100);
        for i in 0..150 {
            bm.push(i as f64);
        }
        assert!(bm.confidence_interval(0.95).is_none());
        for i in 0..100 {
            bm.push(i as f64);
        }
        assert!(bm.confidence_interval(0.95).is_some());
    }

    #[test]
    fn batched_interval_is_wider_than_naive_for_correlated_data() {
        // With strong positive autocorrelation the naive per-observation
        // interval is far too optimistic; batch means corrects for it.
        let data = ar1(100_000, 0.95, 42);
        let naive: OnlineStats = data.iter().copied().collect();
        let mut bm = BatchMeans::new(2_000);
        for &x in &data {
            bm.push(x);
        }
        let naive_ci = naive.confidence_interval(0.95);
        let batch_ci = bm.confidence_interval(0.95).unwrap();
        assert!(
            batch_ci.half_width > 2.0 * naive_ci.half_width,
            "batched {} vs naive {}",
            batch_ci.half_width,
            naive_ci.half_width
        );
        // Both center on (nearly) the same mean.
        assert!((batch_ci.mean - naive_ci.mean).abs() < 0.05);
    }

    #[test]
    fn iid_data_gives_similar_intervals_either_way() {
        let data = ar1(50_000, 0.0, 7);
        let naive: OnlineStats = data.iter().copied().collect();
        let mut bm = BatchMeans::new(500);
        for &x in &data {
            bm.push(x);
        }
        let a = naive.confidence_interval(0.95).half_width;
        let b = bm.confidence_interval(0.95).unwrap().half_width;
        let ratio = b / a;
        assert!((0.6..1.7).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "batch size must be positive")]
    fn zero_batch_size_panics() {
        let _ = BatchMeans::new(0);
    }
}
