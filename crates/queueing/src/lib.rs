//! Queueing-theory substrate for `loadsteal`.
//!
//! The paper's dynamic model is a field of M/M/1-like queues coupled by
//! stealing. This crate provides the pieces both the simulator and the
//! mean-field analysis need:
//!
//! * [`dist`] — service/arrival time distributions with exact moments and
//!   inverse-transform samplers (Exponential, Deterministic, Erlang-k,
//!   Hyperexponential, Uniform). Erlang-k is the "method of stages"
//!   distribution used in Section 3.1 of the paper to approximate
//!   constant service times.
//! * [`mm1`] — closed forms for the uncoupled baseline: M/M/1 occupancy
//!   tails `P(N ≥ i) = ρ^i`, sojourn times, and the M/D/1
//!   Pollaczek–Khinchine mean for the constant-service comparison.
//! * [`stats`] — Welford online statistics, confidence intervals, and
//!   time-weighted averages for simulation output analysis.
//! * [`littles_law`] — conversions between time-in-system and mean
//!   occupancy under a known arrival rate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch_means;
pub mod dist;
pub mod littles_law;
pub mod mm1;
pub mod stats;
pub mod zig;

pub use batch_means::BatchMeans;
pub use dist::ServiceDistribution;
pub use stats::{ConfidenceInterval, OnlineStats, TimeWeighted};
