//! Ziggurat sampler for the unit exponential (Marsaglia–Tsang 2000).
//!
//! The inversion sampler `-ln(U)` is exact but pays a `ln` on every
//! draw, and in a simulator the result feeds straight into the next
//! event time, so the ~40-cycle latency sits on the critical path of
//! every event. The ziggurat covers the density with 256 equal-area
//! horizontal layers: a draw takes one `u64`, picks a layer from the
//! low bits, scales the high bits to a point in the layer, and accepts
//! immediately when the point lies left of the next layer's edge —
//! ~98.9% of draws cost one table lookup, one multiply, one compare.
//! The remainder fall in a layer's wedge (resolved by an exact density
//! test) or the base layer's tail, where memorylessness gives
//! `R + Exp(1)` with a fresh logarithm.
//!
//! The sampler is *exactly* exponential — every acceptance test
//! compares against the true density, so only speed, not the law,
//! differs from inversion. Draw-for-draw output does differ (one `u64`
//! consumed in the common case, more on wedge rejections), which is why
//! switching samplers is a distribution-level no-op but changes the
//! trajectory of any fixed seed.
//!
//! Tables are built once, at first use, from the published constants;
//! the build is pure `f64` arithmetic (`exp`, `ln`) and therefore
//! deterministic for a given target.

use rand::Rng;
use std::sync::LazyLock;

const LAYERS: usize = 256;

/// Right edge of the base layer (Marsaglia–Tsang's `r` for 256 layers).
const R: f64 = 7.697_117_470_131_487;
/// Common area of every layer, including the base strip's tail.
const V: f64 = 3.949_659_822_581_572e-3;

struct Tables {
    /// Layer right edges, descending: `x[0] = V·eᴿ` (the base layer's
    /// virtual width), `x[1] = R`, …, `x[256] = 0`.
    x: [f64; LAYERS + 1],
    /// `f[i] = exp(-x[i])`.
    f: [f64; LAYERS + 1],
}

static TABLES: LazyLock<Tables> = LazyLock::new(|| {
    let mut x = [0.0; LAYERS + 1];
    x[0] = V * R.exp();
    x[1] = R;
    for i in 1..LAYERS {
        // Equal areas: f(x[i+1]) = f(x[i]) + V / x[i].
        x[i + 1] = -(V / x[i] + (-x[i]).exp()).ln();
    }
    // The recursion lands within rounding of zero; pin it exactly. The
    // bottom layer then never fast-accepts and always runs the exact
    // density test, so this costs speed (1/256 of draws), not accuracy.
    x[LAYERS] = 0.0;
    let mut f = [0.0; LAYERS + 1];
    for i in 0..=LAYERS {
        f[i] = (-x[i]).exp();
    }
    Tables { x, f }
});

/// Draw a unit-mean exponential.
#[inline]
pub fn exp1<G: Rng + ?Sized>(rng: &mut G) -> f64 {
    let t: &Tables = &TABLES;
    loop {
        let bits = rng.next_u64();
        let i = (bits & 0xff) as usize;
        // 53 uniform mantissa bits; the low 8 (layer index) overlap the
        // discarded 11, so layer and position are independent.
        let u = (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let x = u * t.x[i];
        if x < t.x[i + 1] {
            return x;
        }
        if i == 0 {
            // Base layer, right of R: the exponential tail restarts by
            // memorylessness.
            return R - (1.0 - rng.random::<f64>()).ln();
        }
        // Wedge: y uniform over the layer's height, exact density test.
        if t.f[i + 1] + (t.f[i] - t.f[i + 1]) * rng.random::<f64>() < (-x).exp() {
            return x;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn tables_are_well_formed() {
        let t: &Tables = &TABLES;
        // Edges descend strictly from the virtual base width to 0.
        assert!((t.x[0] - V * R.exp()).abs() < 1e-12);
        assert_eq!(t.x[1], R);
        for i in 1..=LAYERS {
            assert!(t.x[i - 1] > t.x[i], "x must descend at {i}");
        }
        assert_eq!(t.x[LAYERS], 0.0);
        assert_eq!(t.f[LAYERS], 1.0);
        // The recursion must genuinely exhaust the density: the last
        // computed edge is already within e-12 of zero.
        let mut x_last = R;
        for _ in 1..LAYERS {
            x_last = -(V / x_last + (-x_last).exp()).ln();
        }
        assert!(x_last.abs() < 1e-9, "recursion residual {x_last}");
        // Every layer has area V: (x[i] - x[i+1]) stripe + wedge ≈ V by
        // construction; spot-check via the defining identity.
        for i in 1..LAYERS {
            let lhs = t.f[i + 1];
            let rhs = t.f[i] + V / t.x[i];
            assert!((lhs - rhs).abs() < 1e-12, "area identity at {i}");
        }
    }

    #[test]
    fn moments_match_unit_exponential() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut stats = crate::stats::OnlineStats::new();
        for _ in 0..400_000 {
            let x = exp1(&mut rng);
            assert!(x >= 0.0);
            stats.push(x);
        }
        assert!((stats.mean() - 1.0).abs() < 0.01, "mean {}", stats.mean());
        assert!(
            (stats.variance() - 1.0).abs() < 0.02,
            "var {}",
            stats.variance()
        );
    }

    #[test]
    fn quantiles_and_tail_mass_match() {
        let mut rng = SmallRng::seed_from_u64(12);
        let n = 400_000usize;
        let mut below_ln2 = 0usize;
        let mut beyond_3 = 0usize;
        let mut beyond_r = 0usize;
        for _ in 0..n {
            let x = exp1(&mut rng);
            if x < std::f64::consts::LN_2 {
                below_ln2 += 1;
            }
            if x > 3.0 {
                beyond_3 += 1;
            }
            if x > R {
                beyond_r += 1;
            }
        }
        // Median at ln 2 (±0.5%), P(X>3) = e⁻³ ≈ 4.98% (±0.4%), and the
        // ziggurat tail beyond R must carry its true e⁻ᴿ ≈ 4.5e-4 mass
        // (the algorithm's rarest branch actually fires).
        let med = below_ln2 as f64 / n as f64;
        assert!((med - 0.5).abs() < 0.005, "median mass {med}");
        let t3 = beyond_3 as f64 / n as f64;
        assert!((t3 - (-3.0f64).exp()).abs() < 0.004, "P(X>3) {t3}");
        let tr = beyond_r as f64 / n as f64;
        let expect = (-R).exp();
        assert!(
            tr > 0.3 * expect && tr < 3.0 * expect,
            "tail mass {tr} vs {expect}"
        );
    }
}
