//! Service-time (and inter-arrival) distributions.
//!
//! All samplers are inverse-transform (or stage compositions thereof) on
//! a caller-provided [`rand::Rng`], so replications are reproducible from
//! a seed and the crate needs no `rand_distr` dependency.

use rand::Rng;

/// A non-negative continuous distribution used for service or
/// inter-arrival times.
///
/// The variants cover the paper's needs: exponential (the base model),
/// deterministic (Section 3.1's constant service times), Erlang-k (the
/// method-of-stages approximation to a constant), plus hyperexponential
/// and uniform for sensitivity experiments on service variability.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceDistribution {
    /// Exponential with the given rate (mean `1/rate`).
    Exponential {
        /// Rate parameter `> 0`.
        rate: f64,
    },
    /// A constant.
    Deterministic {
        /// The fixed value `>= 0`.
        value: f64,
    },
    /// Sum of `stages` iid exponentials, each of rate `rate`
    /// (mean `stages / rate`). As `stages → ∞` with mean held fixed this
    /// converges to a constant — Erlang's method of stages.
    Erlang {
        /// Number of stages `>= 1`.
        stages: u32,
        /// Per-stage rate `> 0`.
        rate: f64,
    },
    /// Two-phase hyperexponential: with probability `p` the sample is
    /// Exponential(`rate1`), otherwise Exponential(`rate2`). Gives a
    /// squared coefficient of variation above 1.
    HyperExp {
        /// Probability of the first branch, in `[0, 1]`.
        p: f64,
        /// Rate of the first branch `> 0`.
        rate1: f64,
        /// Rate of the second branch `> 0`.
        rate2: f64,
    },
    /// Uniform on `[lo, hi]`.
    Uniform {
        /// Lower endpoint `>= 0`.
        lo: f64,
        /// Upper endpoint `>= lo`.
        hi: f64,
    },
}

impl ServiceDistribution {
    /// Exponential with unit mean — the paper's default service law.
    pub fn unit_exponential() -> Self {
        Self::Exponential { rate: 1.0 }
    }

    /// Deterministic with unit mean — Section 3.1's constant service.
    pub fn unit_deterministic() -> Self {
        Self::Deterministic { value: 1.0 }
    }

    /// Erlang with `stages` stages and unit mean (per-stage rate =
    /// `stages`) — the c-stage approximation of constant service used for
    /// the Table 2 estimates.
    pub fn unit_erlang(stages: u32) -> Self {
        Self::Erlang {
            stages,
            rate: stages as f64,
        }
    }

    /// Validate the parameters, returning a human-readable reason on
    /// failure. All constructors are plain enum literals, so this is the
    /// single choke point callers use before running long simulations.
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            Self::Exponential { rate } => {
                if rate.is_finite() && rate > 0.0 {
                    Ok(())
                } else {
                    Err(format!("exponential rate must be > 0, got {rate}"))
                }
            }
            Self::Deterministic { value } => {
                if value.is_finite() && value >= 0.0 {
                    Ok(())
                } else {
                    Err(format!("deterministic value must be >= 0, got {value}"))
                }
            }
            Self::Erlang { stages, rate } => {
                if stages == 0 {
                    Err("erlang needs at least one stage".into())
                } else if !(rate.is_finite() && rate > 0.0) {
                    Err(format!("erlang rate must be > 0, got {rate}"))
                } else {
                    Ok(())
                }
            }
            Self::HyperExp { p, rate1, rate2 } => {
                if !(0.0..=1.0).contains(&p) {
                    Err(format!("hyperexp p must be in [0,1], got {p}"))
                } else if !(rate1 > 0.0 && rate2 > 0.0) {
                    Err("hyperexp rates must be > 0".into())
                } else {
                    Ok(())
                }
            }
            Self::Uniform { lo, hi } => {
                if lo.is_finite() && lo >= 0.0 && hi >= lo {
                    Ok(())
                } else {
                    Err(format!("uniform needs 0 <= lo <= hi, got [{lo}, {hi}]"))
                }
            }
        }
    }

    /// The mean of the distribution.
    pub fn mean(&self) -> f64 {
        match *self {
            Self::Exponential { rate } => 1.0 / rate,
            Self::Deterministic { value } => value,
            Self::Erlang { stages, rate } => stages as f64 / rate,
            Self::HyperExp { p, rate1, rate2 } => p / rate1 + (1.0 - p) / rate2,
            Self::Uniform { lo, hi } => 0.5 * (lo + hi),
        }
    }

    /// The variance of the distribution.
    pub fn variance(&self) -> f64 {
        match *self {
            Self::Exponential { rate } => 1.0 / (rate * rate),
            Self::Deterministic { .. } => 0.0,
            Self::Erlang { stages, rate } => stages as f64 / (rate * rate),
            Self::HyperExp { p, rate1, rate2 } => {
                // Var = E[X^2] - mean^2; branch second moments are 2/rate^2.
                let m = self.mean();
                let ex2 = 2.0 * (p / (rate1 * rate1) + (1.0 - p) / (rate2 * rate2));
                ex2 - m * m
            }
            Self::Uniform { lo, hi } => (hi - lo) * (hi - lo) / 12.0,
        }
    }

    /// Squared coefficient of variation `Var / mean²` (0 for constants,
    /// 1 for exponential, `1/k` for Erlang-k, `> 1` for hyperexponential).
    pub fn scv(&self) -> f64 {
        let m = self.mean();
        if m == 0.0 {
            0.0
        } else {
            self.variance() / (m * m)
        }
    }

    /// Draw one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match *self {
            Self::Exponential { rate } => exp_sample(rng, rate),
            Self::Deterministic { value } => value,
            Self::Erlang { stages, rate } => {
                // Product-of-uniforms form: sum of k exponentials equals
                // -ln(U_1 ... U_k)/rate; one log instead of k.
                let mut prod = 1.0_f64;
                for _ in 0..stages {
                    prod *= positive_uniform(rng);
                }
                -prod.ln() / rate
            }
            Self::HyperExp { p, rate1, rate2 } => {
                let branch: f64 = rng.random();
                if branch < p {
                    exp_sample(rng, rate1)
                } else {
                    exp_sample(rng, rate2)
                }
            }
            Self::Uniform { lo, hi } => lo + (hi - lo) * rng.random::<f64>(),
        }
    }
}

/// Sample `Exponential(rate)` via the ziggurat ([`crate::zig`]): the
/// law is exactly exponential, at roughly a third of inversion's
/// in-situ latency (no `ln` on ~98.9% of draws).
#[inline]
pub fn exp_sample<R: Rng + ?Sized>(rng: &mut R, rate: f64) -> f64 {
    crate::zig::exp1(rng) / rate
}

/// A uniform draw in `(0, 1]`, avoiding `ln(0)`.
#[inline]
fn positive_uniform<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    1.0 - rng.random::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn sample_mean_var(dist: &ServiceDistribution, n: usize, seed: u64) -> (f64, f64) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut stats = crate::stats::OnlineStats::new();
        for _ in 0..n {
            stats.push(dist.sample(&mut rng));
        }
        (stats.mean(), stats.variance())
    }

    #[test]
    fn exponential_moments_match() {
        let d = ServiceDistribution::Exponential { rate: 2.0 };
        assert_eq!(d.mean(), 0.5);
        assert_eq!(d.variance(), 0.25);
        assert!((d.scv() - 1.0).abs() < 1e-12);
        let (m, v) = sample_mean_var(&d, 200_000, 1);
        assert!((m - 0.5).abs() < 0.01, "mean {m}");
        assert!((v - 0.25).abs() < 0.02, "var {v}");
    }

    #[test]
    fn deterministic_is_constant() {
        let d = ServiceDistribution::Deterministic { value: 1.5 };
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(d.sample(&mut rng), 1.5);
        }
        assert_eq!(d.scv(), 0.0);
    }

    #[test]
    fn erlang_moments_and_scv() {
        let d = ServiceDistribution::unit_erlang(20);
        assert!((d.mean() - 1.0).abs() < 1e-12);
        assert!((d.scv() - 0.05).abs() < 1e-12);
        let (m, v) = sample_mean_var(&d, 100_000, 2);
        assert!((m - 1.0).abs() < 0.01, "mean {m}");
        assert!((v - 0.05).abs() < 0.01, "var {v}");
    }

    #[test]
    fn erlang_approaches_constant() {
        // SCV shrinks like 1/k, so samples concentrate around the mean.
        let d = ServiceDistribution::unit_erlang(400);
        let (m, v) = sample_mean_var(&d, 50_000, 3);
        assert!((m - 1.0).abs() < 0.01);
        assert!(v < 0.01);
    }

    #[test]
    fn hyperexp_moments_match() {
        let d = ServiceDistribution::HyperExp {
            p: 0.3,
            rate1: 0.5,
            rate2: 2.0,
        };
        let mean = 0.3 / 0.5 + 0.7 / 2.0;
        assert!((d.mean() - mean).abs() < 1e-12);
        assert!(d.scv() > 1.0, "hyperexp must be more variable than exp");
        let (m, _) = sample_mean_var(&d, 300_000, 4);
        assert!((m - mean).abs() < 0.02, "mean {m}");
    }

    #[test]
    fn uniform_moments_match() {
        let d = ServiceDistribution::Uniform { lo: 1.0, hi: 3.0 };
        assert_eq!(d.mean(), 2.0);
        assert!((d.variance() - 1.0 / 3.0).abs() < 1e-12);
        let (m, v) = sample_mean_var(&d, 100_000, 5);
        assert!((m - 2.0).abs() < 0.01);
        assert!((v - 1.0 / 3.0).abs() < 0.02);
    }

    #[test]
    fn samples_are_non_negative_and_finite() {
        let dists = [
            ServiceDistribution::unit_exponential(),
            ServiceDistribution::unit_deterministic(),
            ServiceDistribution::unit_erlang(10),
            ServiceDistribution::HyperExp {
                p: 0.5,
                rate1: 1.0,
                rate2: 10.0,
            },
            ServiceDistribution::Uniform { lo: 0.0, hi: 2.0 },
        ];
        let mut rng = SmallRng::seed_from_u64(6);
        for d in &dists {
            d.validate().unwrap();
            for _ in 0..10_000 {
                let x = d.sample(&mut rng);
                assert!(x.is_finite() && x >= 0.0, "{d:?} produced {x}");
            }
        }
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        assert!(ServiceDistribution::Exponential { rate: 0.0 }
            .validate()
            .is_err());
        assert!(ServiceDistribution::Exponential { rate: -1.0 }
            .validate()
            .is_err());
        assert!(ServiceDistribution::Deterministic { value: -0.1 }
            .validate()
            .is_err());
        assert!(ServiceDistribution::Erlang {
            stages: 0,
            rate: 1.0
        }
        .validate()
        .is_err());
        assert!(ServiceDistribution::HyperExp {
            p: 1.5,
            rate1: 1.0,
            rate2: 1.0
        }
        .validate()
        .is_err());
        assert!(ServiceDistribution::Uniform { lo: 2.0, hi: 1.0 }
            .validate()
            .is_err());
    }

    #[test]
    fn seeded_sampling_is_reproducible() {
        let d = ServiceDistribution::unit_exponential();
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(d.sample(&mut a), d.sample(&mut b));
        }
    }
}
