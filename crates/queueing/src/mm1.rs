//! Closed forms for the uncoupled single-queue baselines.
//!
//! Without stealing, each processor in the paper's model is an
//! independent M/M/1 queue with arrival rate `λ` and service rate 1; its
//! stationary occupancy tail is `P(N ≥ i) = λ^i` — exactly the fixed
//! point `π_i = λ^i` of equation (1). Constant service gives M/D/1, whose
//! Pollaczek–Khinchine mean shows the variance benefit the paper observes
//! in Table 2.

/// Parameters of an M/M/1 queue.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mm1 {
    /// Arrival rate.
    pub lambda: f64,
    /// Service rate.
    pub mu: f64,
}

impl Mm1 {
    /// Construct, validating stability (`λ < μ`).
    pub fn new(lambda: f64, mu: f64) -> Result<Self, String> {
        if !(lambda >= 0.0 && lambda.is_finite()) {
            return Err(format!(
                "arrival rate must be finite and >= 0, got {lambda}"
            ));
        }
        if !(mu > 0.0 && mu.is_finite()) {
            return Err(format!("service rate must be finite and > 0, got {mu}"));
        }
        if lambda >= mu {
            return Err(format!("unstable queue: lambda = {lambda} >= mu = {mu}"));
        }
        Ok(Self { lambda, mu })
    }

    /// Utilization `ρ = λ/μ`.
    pub fn rho(&self) -> f64 {
        self.lambda / self.mu
    }

    /// Stationary tail `P(N ≥ i) = ρ^i`.
    pub fn occupancy_tail(&self, i: u32) -> f64 {
        self.rho().powi(i as i32)
    }

    /// Mean number in system `L = ρ / (1 − ρ)`.
    pub fn mean_in_system(&self) -> f64 {
        let rho = self.rho();
        rho / (1.0 - rho)
    }

    /// Mean time in system `W = 1 / (μ − λ)`.
    pub fn mean_time_in_system(&self) -> f64 {
        1.0 / (self.mu - self.lambda)
    }

    /// Mean waiting time (before service) `W_q = ρ / (μ − λ)`.
    pub fn mean_waiting_time(&self) -> f64 {
        self.rho() / (self.mu - self.lambda)
    }
}

/// Mean time in system of an M/G/1 queue with arrival rate `lambda`,
/// mean service `es` and squared coefficient of variation `scv`
/// (Pollaczek–Khinchine): `W = E[S] + λ E[S²] / (2 (1 − ρ))` with
/// `E[S²] = (1 + scv) E[S]²`.
pub fn mg1_mean_time_in_system(lambda: f64, es: f64, scv: f64) -> f64 {
    let rho = lambda * es;
    assert!(rho < 1.0, "unstable M/G/1: rho = {rho}");
    let es2 = (1.0 + scv) * es * es;
    es + lambda * es2 / (2.0 * (1.0 - rho))
}

/// M/D/1 mean time in system (constant service of length `es`).
pub fn md1_mean_time_in_system(lambda: f64, es: f64) -> f64 {
    mg1_mean_time_in_system(lambda, es, 0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tails_are_geometric() {
        let q = Mm1::new(0.8, 1.0).unwrap();
        assert!((q.occupancy_tail(0) - 1.0).abs() < 1e-15);
        assert!((q.occupancy_tail(3) - 0.512).abs() < 1e-12);
        for i in 0..10 {
            let ratio = q.occupancy_tail(i + 1) / q.occupancy_tail(i);
            assert!((ratio - 0.8).abs() < 1e-12);
        }
    }

    #[test]
    fn littles_law_holds_internally() {
        let q = Mm1::new(0.9, 1.0).unwrap();
        assert!((q.mean_in_system() - q.lambda * q.mean_time_in_system()).abs() < 1e-12);
    }

    #[test]
    fn waiting_plus_service_is_total() {
        let q = Mm1::new(0.5, 2.0).unwrap();
        assert!((q.mean_waiting_time() + 1.0 / q.mu - q.mean_time_in_system()).abs() < 1e-12);
    }

    #[test]
    fn unstable_queue_is_rejected() {
        assert!(Mm1::new(1.0, 1.0).is_err());
        assert!(Mm1::new(2.0, 1.0).is_err());
        assert!(Mm1::new(-0.1, 1.0).is_err());
        assert!(Mm1::new(0.5, 0.0).is_err());
    }

    #[test]
    fn mg1_reduces_to_mm1_for_scv_one() {
        let lambda = 0.7;
        let w_mm1 = Mm1::new(lambda, 1.0).unwrap().mean_time_in_system();
        let w_mg1 = mg1_mean_time_in_system(lambda, 1.0, 1.0);
        assert!((w_mm1 - w_mg1).abs() < 1e-12);
    }

    #[test]
    fn constant_service_halves_the_wait() {
        // Classic result: M/D/1 waiting time is half of M/M/1's.
        let lambda = 0.8;
        let wq_mm1 = Mm1::new(lambda, 1.0).unwrap().mean_waiting_time();
        let wq_md1 = md1_mean_time_in_system(lambda, 1.0) - 1.0;
        assert!((wq_md1 - 0.5 * wq_mm1).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "unstable M/G/1")]
    fn mg1_panics_when_unstable() {
        let _ = mg1_mean_time_in_system(1.2, 1.0, 1.0);
    }
}
