//! Little's law conversions.
//!
//! At a fixed point, the paper computes the expected time a task spends
//! in the system from the mean number of tasks per processor:
//! `W = L / λ`. These helpers keep that conversion explicit (and tested)
//! rather than inlined at every call site.

/// Mean time in system from mean occupancy and arrival rate (`W = L/λ`).
///
/// # Panics
/// Panics if `lambda <= 0`.
pub fn time_in_system(mean_occupancy: f64, lambda: f64) -> f64 {
    assert!(lambda > 0.0, "Little's law needs a positive arrival rate");
    mean_occupancy / lambda
}

/// Mean occupancy from mean time in system and arrival rate (`L = λW`).
pub fn occupancy(mean_time_in_system: f64, lambda: f64) -> f64 {
    lambda * mean_time_in_system
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let w = time_in_system(2.5, 0.5);
        assert_eq!(w, 5.0);
        assert_eq!(occupancy(w, 0.5), 2.5);
    }

    #[test]
    fn matches_mm1_closed_form() {
        let q = crate::mm1::Mm1::new(0.9, 1.0).unwrap();
        let w = time_in_system(q.mean_in_system(), q.lambda);
        assert!((w - q.mean_time_in_system()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive arrival rate")]
    fn zero_rate_panics() {
        let _ = time_in_system(1.0, 0.0);
    }
}
