//! Property-based tests for distributions and statistics.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use loadsteal_queueing::dist::ServiceDistribution;
use loadsteal_queueing::mm1::{mg1_mean_time_in_system, Mm1};
use loadsteal_queueing::stats::OnlineStats;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sample_means_track_analytic_means(
        which in 0usize..5,
        p1 in 0.1f64..5.0,
        p2 in 0.1f64..5.0,
        seed in any::<u64>(),
    ) {
        let dist = match which {
            0 => ServiceDistribution::Exponential { rate: p1 },
            1 => ServiceDistribution::Deterministic { value: p1 },
            2 => ServiceDistribution::Erlang { stages: 1 + (p2 as u32 % 20), rate: p1 },
            3 => ServiceDistribution::HyperExp { p: 0.4, rate1: p1, rate2: p2 },
            _ => ServiceDistribution::Uniform { lo: p1.min(p2), hi: p1.max(p2) + 0.1 },
        };
        dist.validate().unwrap();
        let mut rng = SmallRng::seed_from_u64(seed);
        let stats: OnlineStats = (0..40_000).map(|_| dist.sample(&mut rng)).collect();
        let mean = dist.mean();
        let tol = 6.0 * (dist.variance() / 40_000.0).sqrt() + 1e-9;
        prop_assert!(
            (stats.mean() - mean).abs() < tol.max(0.02 * mean),
            "{dist:?}: sample {} vs analytic {mean}",
            stats.mean()
        );
    }

    #[test]
    fn all_samples_non_negative(
        rate in 0.05f64..20.0,
        seed in any::<u64>(),
    ) {
        let dist = ServiceDistribution::Exponential { rate };
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..1_000 {
            let x = dist.sample(&mut rng);
            prop_assert!(x.is_finite() && x >= 0.0);
        }
    }

    #[test]
    fn welford_merge_is_associative_enough(
        xs in prop::collection::vec(-1e3f64..1e3, 3..200),
        split in 0usize..200,
    ) {
        let split = split % xs.len();
        let whole: OnlineStats = xs.iter().copied().collect();
        let mut left: OnlineStats = xs[..split].iter().copied().collect();
        let right: OnlineStats = xs[split..].iter().copied().collect();
        left.merge(&right);
        prop_assert!((left.mean() - whole.mean()).abs() < 1e-8);
        prop_assert!((left.variance() - whole.variance()).abs() < 1e-6 * (1.0 + whole.variance()));
        prop_assert_eq!(left.count(), whole.count());
    }

    #[test]
    fn mm1_metrics_satisfy_littles_law(lambda in 0.01f64..0.99) {
        let q = Mm1::new(lambda, 1.0).unwrap();
        prop_assert!((q.mean_in_system() - lambda * q.mean_time_in_system()).abs() < 1e-10);
        // Tail sum identity: Σ_{i≥1} ρ^i = L.
        let tail_sum: f64 = (1..2000).map(|i| q.occupancy_tail(i)).sum();
        prop_assert!((tail_sum - q.mean_in_system()).abs() < 1e-6);
    }

    #[test]
    fn service_variability_orders_mg1_waits(lambda in 0.05f64..0.9) {
        // scv 0 (constant) ≤ scv 1 (exponential) ≤ scv 4 (bursty).
        let w0 = mg1_mean_time_in_system(lambda, 1.0, 0.0);
        let w1 = mg1_mean_time_in_system(lambda, 1.0, 1.0);
        let w4 = mg1_mean_time_in_system(lambda, 1.0, 4.0);
        prop_assert!(w0 <= w1 && w1 <= w4);
    }
}
