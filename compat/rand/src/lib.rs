//! Offline shim for the subset of the `rand` 0.9 API used in this
//! workspace.
//!
//! The build image has no crates.io access, so the workspace vendors a
//! drop-in replacement: [`rngs::SmallRng`] is xoshiro256++ seeded via
//! SplitMix64 (the same algorithm family as upstream's 64-bit
//! `SmallRng`), and the [`Rng`] trait provides `random::<f64>()` and
//! `random_range(..)` with the semantics the simulator and samplers
//! rely on: `f64` draws are uniform on `[0, 1)` and integer ranges are
//! half-open.
//!
//! Only determinism-per-seed and statistical quality matter to the
//! callers; no attempt is made to match upstream's exact streams.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::ops::Range;

/// Types that can construct themselves from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// A source of randomness plus the derived sampling helpers used by the
/// workspace.
pub trait Rng {
    /// The next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Sample a value of `T` from its standard distribution
    /// (`f64`/`f32`: uniform `[0, 1)`; integers: uniform over the full
    /// domain; `bool`: fair coin).
    #[inline]
    fn random<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Sample uniformly from a half-open integer range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    #[inline]
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }
}

/// Values drawable from a standard distribution. See [`Rng::random`].
pub trait StandardSample {
    /// Draw one value.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    #[inline]
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → uniform on [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    #[inline]
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for u64 {
    #[inline]
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    #[inline]
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardSample for bool {
    #[inline]
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::random_range`] can sample from.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift mapping of 64 random bits onto the span;
                // bias is O(span / 2^64), immaterial for the simulator's
                // processor counts.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let u: f64 = rng.random();
        self.start + (self.end - self.start) * u
    }
}

/// Small, fast generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// xoshiro256++: 256 bits of state, excellent equidistribution, and
    /// sub-nanosecond output — the workhorse generator of the simulator.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            SmallRng { s }
        }
    }

    impl Rng for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s2 = s2 ^ s0;
            let s3 = s3 ^ s1;
            let s1 = s1 ^ s2;
            let s0 = s0 ^ s3;
            s2 ^= t;
            self.s = [s0, s1, s2, s3.rotate_left(45)];
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_draws_are_in_unit_interval_with_half_mean() {
        let mut rng = SmallRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }

    #[test]
    fn range_draws_cover_the_range_uniformly() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[rng.random_range(0..8usize)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "counts {counts:?}");
        }
        // Sub-ranges respect their bounds.
        for _ in 0..1_000 {
            let v = rng.random_range(3..7usize);
            assert!((3..7).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = SmallRng::seed_from_u64(1);
        let _ = rng.random_range(5..5usize);
    }
}
