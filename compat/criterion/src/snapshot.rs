//! Bench snapshot files and the regression gate that compares them.
//!
//! A snapshot is a small JSON document (`loadsteal.bench.v1`) mapping
//! benchmark labels to their median wall time in ns per iteration:
//!
//! ```json
//! {
//!   "schema": "loadsteal.bench.v1",
//!   "unit": "ns_per_iter",
//!   "stat": "median",
//!   "benches": {
//!     "deriv/simple_ws_dim_~500": 811.4,
//!     "simulator/simple_ws_n128_500s": 13954821.0
//!   }
//! }
//! ```
//!
//! The writer and reader are hand-rolled (the image has no serde);
//! the reader accepts any whitespace layout plus `\"`/`\\` escapes in
//! labels, which covers everything the writer can produce.

use crate::BenchResult;

/// Identifier stamped into every snapshot document.
pub const SCHEMA: &str = "loadsteal.bench.v1";

/// Median ns-per-iter per benchmark label, in execution order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// `(label, median_ns)` pairs.
    pub benches: Vec<(String, f64)>,
}

impl Snapshot {
    /// Collect the medians out of a finished benchmark run.
    pub fn from_results(results: &[BenchResult]) -> Self {
        Self {
            benches: results
                .iter()
                .map(|r| (r.label.clone(), r.median_ns))
                .collect(),
        }
    }

    /// Look up one benchmark's median.
    pub fn get(&self, label: &str) -> Option<f64> {
        self.benches
            .iter()
            .find(|(l, _)| l == label)
            .map(|(_, v)| *v)
    }

    /// Serialize to the `loadsteal.bench.v1` document.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
        out.push_str("  \"unit\": \"ns_per_iter\",\n");
        out.push_str("  \"stat\": \"median\",\n");
        out.push_str("  \"benches\": {");
        for (i, (label, ns)) in self.benches.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str(&format!("    \"{}\": {}", escape(label), fmt_f64(*ns)));
        }
        out.push_str(if self.benches.is_empty() {
            "}\n"
        } else {
            "\n  }\n"
        });
        out.push_str("}\n");
        out
    }

    /// Parse a `loadsteal.bench.v1` document.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        let mut schema = None;
        let mut benches = None;
        p.expect(b'{')?;
        loop {
            p.skip_ws();
            if p.peek() == Some(b'}') {
                p.pos += 1;
                break;
            }
            let key = p.string()?;
            p.expect(b':')?;
            match key.as_str() {
                "schema" => schema = Some(p.string()?),
                "benches" => benches = Some(p.flat_object()?),
                // unit/stat (and any future metadata) are informational.
                _ => p.skip_value()?,
            }
            p.skip_ws();
            match p.peek() {
                Some(b',') => p.pos += 1,
                Some(b'}') => {}
                _ => return Err(p.err("expected ',' or '}'")),
            }
        }
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing content after document"));
        }
        match schema.as_deref() {
            Some(SCHEMA) => {}
            Some(other) => return Err(format!("unsupported schema {other:?}")),
            None => return Err("missing \"schema\" field".into()),
        }
        Ok(Self {
            benches: benches.ok_or("missing \"benches\" object")?,
        })
    }

    /// Write the snapshot to `path`.
    pub fn save(&self, path: &str) -> Result<(), String> {
        std::fs::write(path, self.to_json()).map_err(|e| format!("cannot write {path:?}: {e}"))
    }

    /// Read and parse a snapshot from `path`.
    pub fn load(path: &str) -> Result<Self, String> {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read {path:?}: {e}"))?;
        Self::parse(&text).map_err(|e| format!("{path}: {e}"))
    }
}

/// One benchmark's baseline-vs-current pair.
#[derive(Debug, Clone, PartialEq)]
pub struct Delta {
    /// Benchmark label.
    pub name: String,
    /// Baseline median, ns per iteration.
    pub baseline_ns: f64,
    /// Current median, ns per iteration.
    pub current_ns: f64,
}

impl Delta {
    /// current / baseline; > 1 means the current run is slower.
    pub fn ratio(&self) -> f64 {
        self.current_ns / self.baseline_ns
    }
}

/// Outcome of [`compare`].
#[derive(Debug, Clone, Default)]
pub struct Comparison {
    /// Number of benchmarks present in both snapshots.
    pub compared: usize,
    /// All compared pairs, baseline order.
    pub deltas: Vec<Delta>,
    /// Pairs slower than `baseline * (1 + tolerance)`.
    pub regressions: Vec<Delta>,
    /// Baseline benchmarks absent from the current run.
    pub missing: Vec<String>,
    /// Current benchmarks absent from the baseline.
    pub added: Vec<String>,
}

impl Comparison {
    /// Human-readable table of every compared benchmark, flagging
    /// regressions beyond `tolerance`.
    pub fn render(&self, tolerance: f64) -> String {
        let mut out = String::new();
        for d in &self.deltas {
            let change = (d.ratio() - 1.0) * 100.0;
            let flag = if d.current_ns > d.baseline_ns * (1.0 + tolerance) {
                "  REGRESSION"
            } else {
                ""
            };
            out.push_str(&format!(
                "  {:<34} {:>12.1} -> {:>12.1} ns/iter  {change:>+7.1}%{flag}\n",
                d.name, d.baseline_ns, d.current_ns
            ));
        }
        for name in &self.added {
            out.push_str(&format!("  {name:<34} (new, not in baseline)\n"));
        }
        out
    }
}

/// Compare `current` medians against `baseline`, flagging every
/// benchmark that got more than `tolerance` (a fraction, e.g. `0.1`)
/// slower. Benchmarks missing on either side are reported, not failed —
/// a filtered run legitimately measures a subset.
pub fn compare(baseline: &Snapshot, current: &Snapshot, tolerance: f64) -> Comparison {
    let mut cmp = Comparison::default();
    for (name, base_ns) in &baseline.benches {
        match current.get(name) {
            Some(cur_ns) => {
                let d = Delta {
                    name: name.clone(),
                    baseline_ns: *base_ns,
                    current_ns: cur_ns,
                };
                if cur_ns > base_ns * (1.0 + tolerance) {
                    cmp.regressions.push(d.clone());
                }
                cmp.deltas.push(d);
                cmp.compared += 1;
            }
            None => cmp.missing.push(name.clone()),
        }
    }
    for (name, _) in &current.benches {
        if baseline.get(name).is_none() {
            cmp.added.push(name.clone());
        }
    }
    cmp
}

fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            c => vec![c],
        })
        .collect()
}

fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // Keep every value a JSON number with a decimal point so the
        // document is unambiguous about being ns, not an integer count.
        if s.contains('.') || s.contains('e') {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        "null".into()
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        self.skip_ws();
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        _ => return Err(self.err("unsupported escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (labels may hold e.g. '~' or 'µ').
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<f64, String> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(b"null") {
            self.pos += 4;
            return Ok(f64::NAN);
        }
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| self.err("expected a number"))
    }

    /// `{ "name": number, ... }`
    fn flat_object(&mut self) -> Result<Vec<(String, f64)>, String> {
        self.expect(b'{')?;
        let mut out = Vec::new();
        loop {
            self.skip_ws();
            if self.peek() == Some(b'}') {
                self.pos += 1;
                return Ok(out);
            }
            let key = self.string()?;
            self.expect(b':')?;
            let val = self.number()?;
            out.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {}
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    /// Skip one string or number value (metadata fields).
    fn skip_value(&mut self) -> Result<(), String> {
        self.skip_ws();
        match self.peek() {
            Some(b'"') => self.string().map(|_| ()),
            _ => self.number().map(|_| ()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(pairs: &[(&str, f64)]) -> Snapshot {
        Snapshot {
            benches: pairs.iter().map(|(n, v)| (n.to_string(), *v)).collect(),
        }
    }

    #[test]
    fn roundtrips_through_json() {
        let s = snap(&[
            ("deriv/simple_ws_dim_~500", 811.4),
            ("simulator/simple_ws_n128_500s", 13_954_821.0),
            ("weird \"label\" with \\ chars", 3.25e-2),
        ]);
        let back = Snapshot::parse(&s.to_json()).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn empty_snapshot_roundtrips() {
        let s = Snapshot::default();
        assert_eq!(Snapshot::parse(&s.to_json()).unwrap(), s);
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(Snapshot::parse("").is_err());
        assert!(Snapshot::parse("{}").is_err()); // no schema
        assert!(Snapshot::parse("{\"schema\": \"other.v9\", \"benches\": {}}").is_err());
        assert!(Snapshot::parse("{\"schema\": \"loadsteal.bench.v1\"}").is_err()); // no benches
        let good = snap(&[("a", 1.0)]).to_json();
        assert!(Snapshot::parse(&good[..good.len() - 3]).is_err()); // truncated
        assert!(Snapshot::parse(&format!("{good}x")).is_err()); // trailing junk
    }

    #[test]
    fn accepts_any_whitespace_layout() {
        let text = "{\"schema\":\"loadsteal.bench.v1\",\"benches\":{\"a/b\":12.5,\"c\":3.0}}";
        let s = Snapshot::parse(text).unwrap();
        assert_eq!(s.get("a/b"), Some(12.5));
        assert_eq!(s.get("c"), Some(3.0));
    }

    #[test]
    fn twenty_percent_slowdown_fails_ten_percent_tolerance() {
        let baseline = snap(&[("sim", 100.0), ("fp", 50.0)]);
        let slower = snap(&[("sim", 120.0), ("fp", 50.0)]);
        let cmp = compare(&baseline, &slower, 0.10);
        assert_eq!(cmp.compared, 2);
        assert_eq!(cmp.regressions.len(), 1);
        assert_eq!(cmp.regressions[0].name, "sim");
        assert!((cmp.regressions[0].ratio() - 1.2).abs() < 1e-12);
    }

    #[test]
    fn identical_run_passes_and_small_noise_is_tolerated() {
        let baseline = snap(&[("sim", 100.0), ("fp", 50.0)]);
        assert!(compare(&baseline, &baseline, 0.10).regressions.is_empty());
        let noisy = snap(&[("sim", 109.0), ("fp", 45.0)]);
        assert!(compare(&baseline, &noisy, 0.10).regressions.is_empty());
    }

    #[test]
    fn membership_differences_are_reported_not_failed() {
        let baseline = snap(&[("kept", 10.0), ("renamed_away", 10.0)]);
        let current = snap(&[("kept", 10.0), ("brand_new", 10.0)]);
        let cmp = compare(&baseline, &current, 0.10);
        assert!(cmp.regressions.is_empty());
        assert_eq!(cmp.missing, ["renamed_away"]);
        assert_eq!(cmp.added, ["brand_new"]);
        assert_eq!(cmp.compared, 1);
    }

    #[test]
    fn render_flags_regressions() {
        let baseline = snap(&[("sim", 100.0)]);
        let cmp = compare(&baseline, &snap(&[("sim", 150.0)]), 0.10);
        let table = cmp.render(0.10);
        assert!(table.contains("REGRESSION"), "{table}");
        assert!(table.contains("+50.0%"), "{table}");
    }
}
