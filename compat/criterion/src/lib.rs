//! Offline shim for the subset of the `criterion` API used by the
//! `perf.rs` micro-benchmarks.
//!
//! The build image has no crates.io access, so this crate provides a
//! small wall-clock harness behind criterion's names: warm up, pick an
//! iteration count targeting a fixed measurement window, take
//! `sample_size` samples, and report median / mean / min ns-per-iter on
//! stdout. Good enough to compare two builds of the same benchmark
//! (e.g. the NullRecorder-overhead acceptance check); not a statistical
//! twin of upstream criterion.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup cost (accepted, not acted on —
/// the shim always runs setup per batch element).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup {
            group: name.to_string(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    /// Run a single benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) {
        run_bench("", name, self.sample_size, f);
    }
}

/// A named group of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    group: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_bench(&self.group, name, self.sample_size, f);
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(group: &str, name: &str, sample_size: usize, mut f: F) {
    let mut b = Bencher {
        sample_size,
        samples_ns: Vec::new(),
    };
    f(&mut b);
    let mut s = b.samples_ns;
    if s.is_empty() {
        println!("  {group}/{name}: no samples");
        return;
    }
    s.sort_by(f64::total_cmp);
    let median = s[s.len() / 2];
    let mean = s.iter().sum::<f64>() / s.len() as f64;
    let label = if group.is_empty() {
        name.to_string()
    } else {
        format!("{group}/{name}")
    };
    println!(
        "  {label}: median {} mean {} min {} ({} samples)",
        fmt_ns(median),
        fmt_ns(mean),
        fmt_ns(s[0]),
        s.len()
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Timing context handed to the benchmark closure.
pub struct Bencher {
    sample_size: usize,
    samples_ns: Vec<f64>,
}

/// Target wall time per sample.
const SAMPLE_WINDOW: Duration = Duration::from_millis(40);

impl Bencher {
    /// Benchmark a routine by running it repeatedly.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warmup + calibration: how many iters fill the window?
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < SAMPLE_WINDOW / 4 {
            std::hint::black_box(routine());
            iters += 1;
        }
        let per_iter = (start.elapsed().as_nanos() as f64 / iters as f64).max(1.0);
        let batch = ((SAMPLE_WINDOW.as_nanos() as f64 / per_iter) as u64).clamp(1, 1 << 24);
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            self.samples_ns
                .push(t0.elapsed().as_nanos() as f64 / batch as f64);
        }
    }

    /// Benchmark a routine that consumes a fresh setup value each run;
    /// setup time is excluded from the measurement.
    pub fn iter_batched<S, O, Setup, Routine>(
        &mut self,
        mut setup: Setup,
        mut routine: Routine,
        _size: BatchSize,
    ) where
        Setup: FnMut() -> S,
        Routine: FnMut(S) -> O,
    {
        // Calibrate.
        let mut iters = 0u64;
        let mut spent = Duration::ZERO;
        while spent < SAMPLE_WINDOW / 4 {
            let input = setup();
            let t0 = Instant::now();
            std::hint::black_box(routine(input));
            spent += t0.elapsed();
            iters += 1;
        }
        let per_iter = (spent.as_nanos() as f64 / iters as f64).max(1.0);
        let batch = ((SAMPLE_WINDOW.as_nanos() as f64 / per_iter) as u64).clamp(1, 1 << 16);
        for _ in 0..self.sample_size {
            let mut ns = 0.0;
            for _ in 0..batch {
                let input = setup();
                let t0 = Instant::now();
                std::hint::black_box(routine(input));
                ns += t0.elapsed().as_nanos() as f64;
            }
            self.samples_ns.push(ns / batch as f64);
        }
    }
}

/// Declare a group of benchmark functions as one runnable unit.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declare the benchmark binary's `main` from one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_collects_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(3);
        let mut ran = 0u64;
        g.bench_function("noop", |b| b.iter(|| ran += 1));
        g.finish();
        assert!(ran > 0);
    }

    #[test]
    fn iter_batched_runs_setup_and_routine() {
        let mut c = Criterion::default();
        let mut made = 0u64;
        c.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    made += 1;
                    vec![1u8; 16]
                },
                |v| v.len(),
                BatchSize::SmallInput,
            )
        });
        assert!(made > 0);
    }
}
