//! Offline shim for the subset of the `criterion` API used by the
//! `perf.rs` micro-benchmarks.
//!
//! The build image has no crates.io access, so this crate provides a
//! small wall-clock harness behind criterion's names: warm up, pick an
//! iteration count targeting a fixed measurement window, take
//! `sample_size` samples, and report median / mean / min ns-per-iter on
//! stdout. Good enough to compare two builds of the same benchmark
//! (e.g. the NullRecorder-overhead acceptance check); not a statistical
//! twin of upstream criterion.
//!
//! On top of the upstream-shaped API the shim adds a snapshot gate:
//! `-- --save <path>` writes a `loadsteal.bench.v1` JSON file of median
//! ns-per-iter per benchmark, and `-- --check <path> [--tolerance f]`
//! compares the current run against such a baseline, exiting nonzero
//! when any benchmark regressed by more than the tolerance.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod snapshot;

use std::time::{Duration, Instant};

pub use snapshot::{compare, Comparison, Delta, Snapshot};

/// How `iter_batched` amortizes setup cost (accepted, not acted on —
/// the shim always runs setup per batch element).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Measured outcome of one benchmark.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// `group/name` label (bare `name` outside a group).
    pub label: String,
    /// Median ns per iteration — the statistic the snapshot gate uses.
    pub median_ns: f64,
    /// Mean ns per iteration.
    pub mean_ns: f64,
    /// Fastest sample, ns per iteration.
    pub min_ns: f64,
    /// Number of timing samples taken.
    pub samples: usize,
}

/// Default regression tolerance for `--check`: fail when a benchmark is
/// more than 10% slower than its baseline median.
pub const DEFAULT_TOLERANCE: f64 = 0.10;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    filter: Option<String>,
    save: Option<String>,
    check: Option<String>,
    tolerance: f64,
    results: Vec<BenchResult>,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 20,
            filter: None,
            save: None,
            check: None,
            tolerance: DEFAULT_TOLERANCE,
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Build a driver from the process arguments (everything cargo
    /// forwards after `--`, plus the `--bench` flag cargo itself adds).
    ///
    /// Recognized: `--save <path>`, `--check <path>`,
    /// `--tolerance <fraction>`, `--bench` (ignored), and a positional
    /// substring filter on benchmark labels.
    pub fn from_args() -> Result<Self, String> {
        Self::from_arg_list(std::env::args().skip(1))
    }

    fn from_arg_list<I: IntoIterator<Item = String>>(args: I) -> Result<Self, String> {
        let mut c = Self::default();
        let mut argv = args.into_iter();
        while let Some(arg) = argv.next() {
            let mut take = |flag: &str| {
                argv.next()
                    .ok_or_else(|| format!("{flag} requires a value"))
            };
            match arg.as_str() {
                "--save" => c.save = Some(take("--save")?),
                "--check" => c.check = Some(take("--check")?),
                "--tolerance" => {
                    let v = take("--tolerance")?;
                    c.tolerance = v
                        .parse::<f64>()
                        .ok()
                        .filter(|t| t.is_finite() && *t >= 0.0)
                        .ok_or_else(|| format!("--tolerance: not a fraction >= 0: {v:?}"))?;
                }
                "--bench" => {} // added by `cargo bench` for harness = false
                other if other.starts_with("--") => {
                    return Err(format!("unknown flag {other:?}"));
                }
                filter => c.filter = Some(filter.to_string()),
            }
        }
        Ok(c)
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup {
            group: name.to_string(),
            sample_size: self.sample_size,
            parent: self,
        }
    }

    /// Run a single benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) {
        self.run("", name, self.sample_size, f);
    }

    /// Results measured so far, in execution order.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, group: &str, name: &str, sample_size: usize, f: F) {
        let label = if group.is_empty() {
            name.to_string()
        } else {
            format!("{group}/{name}")
        };
        if let Some(filter) = &self.filter {
            if !label.contains(filter.as_str()) {
                return;
            }
        }
        if let Some(r) = run_bench(&label, sample_size, f) {
            self.results.push(r);
        }
    }

    /// Apply `--save` / `--check` to the collected results. Returns the
    /// process exit code: 0 on success, 1 when the check found a
    /// regression, 2 on I/O or parse failure.
    pub fn finalize(self) -> i32 {
        let current = Snapshot::from_results(&self.results);
        if let Some(path) = &self.save {
            if let Err(e) = current.save(path) {
                eprintln!("error: --save: {e}");
                return 2;
            }
            println!("wrote {} bench medians to {path}", current.benches.len());
        }
        let Some(path) = &self.check else {
            return 0;
        };
        let baseline = match Snapshot::load(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: --check: {e}");
                return 2;
            }
        };
        let cmp = compare(&baseline, &current, self.tolerance);
        print!("{}", cmp.render(self.tolerance));
        if self.filter.is_none() {
            for name in &cmp.missing {
                eprintln!("warning: baseline bench {name:?} did not run");
            }
        }
        if cmp.regressions.is_empty() {
            println!(
                "check OK: {} bench(es) within {:.0}% of {path}",
                cmp.compared,
                self.tolerance * 100.0
            );
            0
        } else {
            eprintln!(
                "error: {} benchmark(s) regressed beyond {:.0}% of {path}",
                cmp.regressions.len(),
                self.tolerance * 100.0
            );
            1
        }
    }
}

/// A named group of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    group: String,
    sample_size: usize,
    parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let (group, n) = (self.group.clone(), self.sample_size);
        self.parent.run(&group, name, n, f);
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(
    label: &str,
    sample_size: usize,
    mut f: F,
) -> Option<BenchResult> {
    let mut b = Bencher {
        sample_size,
        samples_ns: Vec::new(),
    };
    f(&mut b);
    let mut s = b.samples_ns;
    if s.is_empty() {
        println!("  {label}: no samples");
        return None;
    }
    s.sort_by(f64::total_cmp);
    let median = s[s.len() / 2];
    let mean = s.iter().sum::<f64>() / s.len() as f64;
    println!(
        "  {label}: median {} mean {} min {} ({} samples)",
        fmt_ns(median),
        fmt_ns(mean),
        fmt_ns(s[0]),
        s.len()
    );
    Some(BenchResult {
        label: label.to_string(),
        median_ns: median,
        mean_ns: mean,
        min_ns: s[0],
        samples: s.len(),
    })
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Timing context handed to the benchmark closure.
pub struct Bencher {
    sample_size: usize,
    samples_ns: Vec<f64>,
}

/// Target wall time per sample.
const SAMPLE_WINDOW: Duration = Duration::from_millis(40);

impl Bencher {
    /// Benchmark a routine by running it repeatedly.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warmup + calibration: how many iters fill the window?
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < SAMPLE_WINDOW / 4 {
            std::hint::black_box(routine());
            iters += 1;
        }
        let per_iter = (start.elapsed().as_nanos() as f64 / iters as f64).max(1.0);
        let batch = ((SAMPLE_WINDOW.as_nanos() as f64 / per_iter) as u64).clamp(1, 1 << 24);
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            self.samples_ns
                .push(t0.elapsed().as_nanos() as f64 / batch as f64);
        }
    }

    /// Benchmark a routine that consumes a fresh setup value each run;
    /// setup time is excluded from the measurement.
    pub fn iter_batched<S, O, Setup, Routine>(
        &mut self,
        mut setup: Setup,
        mut routine: Routine,
        _size: BatchSize,
    ) where
        Setup: FnMut() -> S,
        Routine: FnMut(S) -> O,
    {
        // Calibrate.
        let mut iters = 0u64;
        let mut spent = Duration::ZERO;
        while spent < SAMPLE_WINDOW / 4 {
            let input = setup();
            let t0 = Instant::now();
            std::hint::black_box(routine(input));
            spent += t0.elapsed();
            iters += 1;
        }
        let per_iter = (spent.as_nanos() as f64 / iters as f64).max(1.0);
        let batch = ((SAMPLE_WINDOW.as_nanos() as f64 / per_iter) as u64).clamp(1, 1 << 16);
        for _ in 0..self.sample_size {
            let mut ns = 0.0;
            for _ in 0..batch {
                let input = setup();
                let t0 = Instant::now();
                std::hint::black_box(routine(input));
                ns += t0.elapsed().as_nanos() as f64;
            }
            self.samples_ns.push(ns / batch as f64);
        }
    }
}

/// Declare a group of benchmark functions as one runnable unit.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declare the benchmark binary's `main` from one or more groups.
///
/// The generated `main` reads `--save` / `--check` / `--tolerance`
/// from the arguments cargo forwards after `--` and exits nonzero when
/// a `--check` comparison against the baseline finds a regression.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = match $crate::Criterion::from_args() {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("error: {e}");
                    std::process::exit(2);
                }
            };
            $($group(&mut c);)+
            std::process::exit(c.finalize());
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_collects_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(3);
        let mut ran = 0u64;
        g.bench_function("noop", |b| b.iter(|| ran += 1));
        g.finish();
        assert!(ran > 0);
        assert_eq!(c.results().len(), 1);
        assert_eq!(c.results()[0].label, "t/noop");
        assert!(c.results()[0].median_ns > 0.0);
    }

    #[test]
    fn iter_batched_runs_setup_and_routine() {
        let mut c = Criterion::default();
        let mut made = 0u64;
        c.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    made += 1;
                    vec![1u8; 16]
                },
                |v| v.len(),
                BatchSize::SmallInput,
            )
        });
        assert!(made > 0);
        assert_eq!(c.results()[0].label, "batched");
    }

    #[test]
    fn filter_skips_non_matching_benches() {
        let mut c = Criterion {
            filter: Some("keep".into()),
            ..Criterion::default()
        };
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        g.bench_function("keep_me", |b| b.iter(|| 1 + 1));
        g.bench_function("drop_me", |b| b.iter(|| 2 + 2));
        g.finish();
        let labels: Vec<_> = c.results().iter().map(|r| r.label.as_str()).collect();
        assert_eq!(labels, ["g/keep_me"]);
    }

    #[test]
    fn arg_parsing_recognizes_gate_flags() {
        let c = Criterion::from_arg_list(
            [
                "--bench",
                "--check",
                "base.json",
                "--tolerance",
                "0.25",
                "deriv",
            ]
            .map(String::from),
        )
        .unwrap();
        assert_eq!(c.check.as_deref(), Some("base.json"));
        assert_eq!(c.tolerance, 0.25);
        assert_eq!(c.filter.as_deref(), Some("deriv"));
        assert!(Criterion::from_arg_list(["--tolerance", "-1"].map(String::from)).is_err());
        assert!(Criterion::from_arg_list(["--frobnicate".into()]).is_err());
        assert!(Criterion::from_arg_list(["--save".into()]).is_err());
    }
}
