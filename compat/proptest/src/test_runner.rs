//! Deterministic case generation for [`crate::proptest!`].

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// How many cases each property runs.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of sampled cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config with an explicit case count.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// The RNG driving input generation.
///
/// Seeded from the fully-qualified test name so runs are reproducible,
/// or from `PROPTEST_SEED` when the environment sets it.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: SmallRng,
}

impl TestRng {
    /// Deterministic RNG for the named test.
    pub fn deterministic(name: &str) -> Self {
        let seed = match std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
        {
            Some(s) => s,
            None => fnv1a(name.as_bytes()),
        };
        Self {
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    /// Next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform draw on `[0, 1)`.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        self.inner.random()
    }

    /// Uniform index below `n`.
    #[inline]
    pub fn below(&mut self, n: usize) -> usize {
        self.inner.random_range(0..n)
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_01b3);
    }
    h
}
