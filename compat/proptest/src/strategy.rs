//! Value-generation strategies (sampling only; no shrinking).

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }

    /// Type-erase this strategy (used by [`crate::prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

// Strategies are sampled by shared reference, so references work too.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Mapped strategy (see [`Strategy::prop_map`]).
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, F, O> Strategy for Map<S, F>
where
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.sample(rng))
    }
}

/// A heap-allocated, type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

trait DynStrategy<T> {
    fn sample_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.sample(rng)
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample_dyn(rng)
    }
}

/// Uniform choice among boxed strategies (see [`crate::prop_oneof!`]).
pub struct OneOf<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> OneOf<T> {
    /// Build from at least one arm.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len());
        self.arms[i].sample(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(usize, u64, u32, u16, u8);

macro_rules! impl_signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
    )*};
}

impl_signed_range_strategy!(i64, i32, i16, i8);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start() + (self.end() - self.start()) * rng.unit_f64()
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::deterministic("ranges_respect_bounds");
        for _ in 0..1000 {
            let u = (3usize..9).sample(&mut rng);
            assert!((3..9).contains(&u));
            let f = (-2.0f64..4.0).sample(&mut rng);
            assert!((-2.0..4.0).contains(&f));
            let s = (-5i32..-1).sample(&mut rng);
            assert!((-5..-1).contains(&s));
        }
    }

    #[test]
    fn oneof_hits_every_arm() {
        let mut rng = TestRng::deterministic("oneof_hits_every_arm");
        let s = crate::prop_oneof![Just(0usize), Just(1usize), Just(2usize)];
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[s.sample(&mut rng)] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn map_and_tuples_compose() {
        let mut rng = TestRng::deterministic("map_and_tuples_compose");
        let s = (1usize..4, 10usize..14).prop_map(|(a, b)| a + b);
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!((11..17).contains(&v));
        }
    }
}
