//! Offline shim for the subset of the `proptest` API used in this
//! workspace.
//!
//! The build image has no crates.io access, so this crate re-implements
//! the pieces the test suites import: the [`proptest!`] macro, the
//! [`strategy::Strategy`] trait with `prop_map`, range and tuple
//! strategies, [`strategy::Just`], [`prop_oneof!`], [`arbitrary::any`],
//! [`collection::vec`], and `prop_assert*` macros.
//!
//! Semantics are simplified relative to upstream: inputs are sampled
//! from a deterministic per-test RNG (seeded from the test name, or
//! `PROPTEST_SEED` when set), there is no shrinking, and `prop_assert!`
//! panics immediately with the failing values visible in the message.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

// `prop::collection::vec(..)` etc. resolve through this self-alias,
// mirroring upstream's prelude.
pub use crate as prop;

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// `any::<T>()` — the full-domain strategy for simple types.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "anything goes" strategy.
    pub trait Arbitrary: Sized {
        /// Draw an arbitrary value.
        fn arbitrary_with(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_with(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arb_int!(u64, u32, u16, u8, usize, i64, i32, i16, i8);

    impl Arbitrary for bool {
        fn arbitrary_with(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary_with(rng)
        }
    }

    /// The full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// The glob-imported surface: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// The body of a [`proptest!`] block: runs `cases` samples of each test.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr);) => {};
    (($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng =
                $crate::test_runner::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__cfg.cases {
                $(let $arg = $crate::strategy::Strategy::sample(&$strat, &mut __rng);)*
                $body
            }
        }
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
}

/// Assert inside a property test (panics on failure — no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assert inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assert inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}
