//! Collection strategies: `prop::collection::vec(element, size)`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// Anything usable as a vector-length specification: a fixed length or
/// a half-open range of lengths.
pub trait IntoSizeRange {
    /// Draw a concrete length.
    fn pick(&self, rng: &mut TestRng) -> usize;
}

impl IntoSizeRange for usize {
    fn pick(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

impl IntoSizeRange for Range<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "empty vec-length range");
        self.start + rng.below(self.end - self.start)
    }
}

/// Strategy for vectors of `element`-generated values.
pub struct VecStrategy<S, L> {
    element: S,
    len: L,
}

impl<S: Strategy, L: IntoSizeRange> Strategy for VecStrategy<S, L> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.len.pick(rng);
        (0..n).map(|_| self.element.sample(rng)).collect()
    }
}

/// Generate vectors whose elements come from `element` and whose length
/// comes from `len` (a `usize` or `Range<usize>`).
pub fn vec<S: Strategy, L: IntoSizeRange>(element: S, len: L) -> VecStrategy<S, L> {
    VecStrategy { element, len }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn fixed_and_ranged_lengths() {
        let mut rng = TestRng::deterministic("fixed_and_ranged_lengths");
        let fixed = vec(0.0f64..1.0, 7usize);
        assert_eq!(fixed.sample(&mut rng).len(), 7);
        let ranged = vec(0.0f64..1.0, 3usize..6);
        for _ in 0..50 {
            let v = ranged.sample(&mut rng);
            assert!((3..6).contains(&v.len()));
            assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }
    }
}
