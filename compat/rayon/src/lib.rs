//! Rayon-compatible facade over the workspace's real work-stealing
//! executor ([`loadsteal_exec`]).
//!
//! Earlier revisions of this crate carried a sequential
//! `std::thread::scope` shim (the build image has no crates.io
//! access). The executor crate now provides genuine per-worker
//! Chase–Lev deques, an injector, randomized stealing, and parking —
//! behind the exact import paths callers already use, so this crate
//! reduces to re-exports plus the small `ThreadPool` wrapper rayon
//! callers expect for pinning a worker count.
//!
//! The three contracts the replication driver relies on are unchanged
//! (and now enforced by the executor's own test suite):
//!
//! 1. results come back in input order;
//! 2. panics in workers propagate to the caller after every sibling
//!    item has drained;
//! 3. each item is evaluated exactly once.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The rayon-style prelude: `use rayon::prelude::*;`.
pub use loadsteal_exec::prelude;

/// Parallel iterator machinery (re-exported from the executor).
pub use loadsteal_exec::iter;

pub use loadsteal_exec::{
    current_num_threads, join, scope, IntoParallelIterator, ParallelIterator, Scope,
};

/// Error type for [`ThreadPoolBuilder::build`]. Pool construction
/// cannot currently fail; the `Result` exists for rayon API parity.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builds a [`ThreadPool`] with an explicit worker count.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Start from defaults (hardware parallelism).
    pub fn new() -> Self {
        Self::default()
    }

    /// Pin the number of worker threads (0 means "default").
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Spawn the workers.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            pool: loadsteal_exec::PoolBuilder::new()
                .num_threads(self.num_threads)
                .build(),
        })
    }
}

/// A dedicated work-stealing pool with a pinned worker count.
///
/// `install` runs a closure on the pool's workers; parallel iterators
/// used inside it execute on *this* pool rather than the global one —
/// which is how tests pin replication fan-out to 1, 2, or 8 workers.
pub struct ThreadPool {
    pool: loadsteal_exec::Pool,
}

impl ThreadPool {
    /// Execute `op` on this pool and return its result. Panics in `op`
    /// propagate to the caller.
    pub fn install<R: Send>(&self, op: impl FnOnce() -> R + Send) -> R {
        self.pool.install(op)
    }

    /// Number of worker threads in this pool.
    pub fn current_num_threads(&self) -> usize {
        self.pool.num_threads()
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let out: Vec<u64> = (0u64..100).into_par_iter().map(|i| i * i).collect();
        let expect: Vec<u64> = (0u64..100).map(|i| i * i).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn pinned_pool_runs_par_iters_on_itself() {
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(2)
            .build()
            .expect("pool builds");
        assert_eq!(pool.current_num_threads(), 2);
        let out: Vec<u64> = pool.install(|| (0u64..64).into_par_iter().map(|i| i + 1).collect());
        assert_eq!(out, (1..=64u64).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic]
    fn worker_panics_propagate() {
        let _: Vec<u64> = (0u64..8)
            .into_par_iter()
            .map(|i| {
                if i == 3 {
                    panic!("boom");
                }
                i
            })
            .collect();
    }

    /// The historical watchdog: one poisoned item among 64 must neither
    /// deadlock nor strand siblings — all 63 others run on any worker
    /// count (the old sequential shim only guaranteed this multi-core).
    #[test]
    fn panicking_worker_does_not_deadlock_or_strand_items() {
        use std::sync::atomic::{AtomicU32, Ordering};
        use std::sync::{mpsc, Arc};
        let processed = Arc::new(AtomicU32::new(0));
        let p = Arc::clone(&processed);
        let (tx, rx) = mpsc::channel();
        std::thread::spawn(move || {
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let _: Vec<u64> = (0u64..64)
                    .into_par_iter()
                    .map(|i| {
                        if i == 5 {
                            panic!("injected worker panic");
                        }
                        p.fetch_add(1, Ordering::Relaxed);
                        i
                    })
                    .collect();
            }));
            let _ = tx.send(result.is_err());
        });
        let panicked = rx
            .recv_timeout(std::time::Duration::from_secs(30))
            .expect("parallel map hung after a worker panic");
        assert!(panicked, "the injected panic must reach the caller");
        assert_eq!(processed.load(Ordering::Relaxed), 63);
    }
}
