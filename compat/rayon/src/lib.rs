//! Offline shim for the subset of the `rayon` API used in this
//! workspace: `range.into_par_iter().map(f).collect::<Vec<_>>()`.
//!
//! The build image has no crates.io access, so this crate provides the
//! same import paths backed by `std::thread::scope`. Work items are
//! handed out through an atomic cursor (dynamic scheduling), results
//! come back in input order, and panics in workers propagate to the
//! caller — the three properties the replication driver relies on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The rayon-style prelude: `use rayon::prelude::*;`.
pub mod prelude {
    pub use crate::iter::{IntoParallelIterator, ParallelIterator};
}

/// Parallel iterator machinery.
pub mod iter {
    use super::*;

    /// Conversion into a parallel iterator.
    pub trait IntoParallelIterator {
        /// Element type.
        type Item: Send;
        /// The resulting parallel iterator.
        type Iter: ParallelIterator<Item = Self::Item>;
        /// Convert `self` into a parallel iterator.
        fn into_par_iter(self) -> Self::Iter;
    }

    /// A value-producing parallel pipeline.
    pub trait ParallelIterator: Sized {
        /// Element type.
        type Item: Send;

        /// Drive the pipeline, returning elements in input order.
        fn run(self) -> Vec<Self::Item>;

        /// Map each element through `f` (evaluated on worker threads).
        fn map<F, R>(self, f: F) -> Map<Self, F>
        where
            F: Fn(Self::Item) -> R + Sync,
            R: Send,
        {
            Map { base: self, f }
        }

        /// Execute the pipeline and collect the results.
        fn collect<C: FromIterator<Self::Item>>(self) -> C {
            self.run().into_iter().collect()
        }
    }

    macro_rules! impl_range_source {
        ($($t:ty),*) => {$(
            impl IntoParallelIterator for std::ops::Range<$t> {
                type Item = $t;
                type Iter = VecSource<$t>;
                fn into_par_iter(self) -> VecSource<$t> {
                    VecSource { items: self.collect() }
                }
            }
        )*};
    }

    impl_range_source!(usize, u64, u32, i64, i32);

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Item = T;
        type Iter = VecSource<T>;
        fn into_par_iter(self) -> VecSource<T> {
            VecSource { items: self }
        }
    }

    /// A materialized source of work items.
    pub struct VecSource<T> {
        items: Vec<T>,
    }

    impl<T: Send> ParallelIterator for VecSource<T> {
        type Item = T;
        fn run(self) -> Vec<T> {
            self.items
        }
    }

    /// Lazily mapped parallel iterator (see [`ParallelIterator::map`]).
    pub struct Map<B, F> {
        base: B,
        f: F,
    }

    impl<B, F, R> ParallelIterator for Map<B, F>
    where
        B: ParallelIterator,
        F: Fn(B::Item) -> R + Sync,
        R: Send,
    {
        type Item = R;
        fn run(self) -> Vec<R> {
            parallel_map(self.base.run(), &self.f)
        }
    }
}

/// Evaluate `f` over `items` on a scoped thread pool, preserving input
/// order. Items are claimed through an atomic cursor so uneven run
/// times balance themselves.
fn parallel_map<T: Send, R: Send>(items: Vec<T>, f: &(impl Fn(T) -> R + Sync)) -> Vec<R> {
    let n = items.len();
    let workers = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n.max(1));
    if workers <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let slots: Vec<Mutex<(Option<T>, Option<R>)>> = items
        .into_iter()
        .map(|t| Mutex::new((Some(t), None)))
        .collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots[i]
                    .lock()
                    .unwrap()
                    .0
                    .take()
                    .expect("item claimed once");
                let out = f(item);
                slots[i].lock().unwrap().1 = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| m.into_inner().unwrap().1.expect("worker finished"))
        .collect()
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let out: Vec<u64> = (0u64..100).into_par_iter().map(|i| i * i).collect();
        let expect: Vec<u64> = (0u64..100).map(|i| i * i).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<u64> = (0u64..0).into_par_iter().map(|i| i).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn actually_runs_concurrently_or_at_least_correctly() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let touched = AtomicU32::new(0);
        let out: Vec<u32> = vec![1u32; 64]
            .into_par_iter()
            .map(|v| {
                touched.fetch_add(1, Ordering::Relaxed);
                v + 1
            })
            .collect();
        assert_eq!(touched.load(Ordering::Relaxed), 64);
        assert!(out.iter().all(|&v| v == 2));
    }

    /// A worker panic must propagate to the caller without hanging the
    /// scope: the replication driver calls `parallel_map` from test
    /// harnesses where a deadlocked join would look like a stuck run.
    /// Run the pipeline on a watchdog thread so a regression fails the
    /// test in 30 s instead of wedging the suite.
    #[test]
    fn panicking_worker_does_not_deadlock_or_strand_items() {
        use std::sync::atomic::{AtomicU32, Ordering};
        use std::sync::{mpsc, Arc};
        let processed = Arc::new(AtomicU32::new(0));
        let p = Arc::clone(&processed);
        let (tx, rx) = mpsc::channel();
        std::thread::spawn(move || {
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let _: Vec<u64> = (0u64..64)
                    .into_par_iter()
                    .map(|i| {
                        if i == 5 {
                            panic!("injected worker panic");
                        }
                        p.fetch_add(1, Ordering::Relaxed);
                        i
                    })
                    .collect();
            }));
            let _ = tx.send(result.is_err());
        });
        let panicked = rx
            .recv_timeout(std::time::Duration::from_secs(30))
            .expect("parallel_map hung after a worker panic");
        assert!(panicked, "the injected panic must reach the caller");
        // Multi-worker path: the surviving workers drain the cursor (63
        // of 64 items) before the scope re-raises the panic. The
        // single-worker fallback maps sequentially and stops at item 5.
        let multi = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            > 1;
        if multi {
            assert_eq!(processed.load(Ordering::Relaxed), 63);
        }
    }

    #[test]
    #[should_panic]
    fn worker_panics_propagate() {
        let _: Vec<u64> = (0u64..8)
            .into_par_iter()
            .map(|i| {
                if i == 3 {
                    panic!("boom");
                }
                i
            })
            .collect();
    }
}
