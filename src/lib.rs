//! `loadsteal` — mean-field analyses of randomized work stealing.
//!
//! Facade crate re-exporting the workspace members. See the README and
//! the `loadsteal-core` crate documentation for the full story.

pub use loadsteal_core as meanfield;
pub use loadsteal_ode as ode;
pub use loadsteal_queueing as queueing;
pub use loadsteal_sim as sim;
pub use loadsteal_verify as verify;
