//! The second-order part of the mean-field story: fluctuations around
//! the deterministic trajectory shrink like `1/√n` (the functional CLT
//! that accompanies Kurtz's law of large numbers).

use loadsteal::queueing::OnlineStats;
use loadsteal::sim::{run_seeded, SimConfig};

/// Variance of the busy fraction `s₁(t = 20)` across replications.
fn busy_fraction_variance(n: usize, runs: usize, seed: u64) -> f64 {
    let mut cfg = SimConfig::paper_default(n, 0.8);
    cfg.horizon = 20.0;
    cfg.warmup = 0.0;
    cfg.snapshot_interval = Some(20.0);
    let stats: OnlineStats = (0..runs as u64)
        .map(|r| {
            let res = run_seeded(&cfg, seed + r);
            res.snapshots
                .last()
                .and_then(|(_, tails)| tails.get(1))
                .copied()
                .expect("snapshot at t = 20")
        })
        .collect();
    stats.variance()
}

#[test]
fn fluctuations_scale_inversely_with_n() {
    let runs = 48;
    let var_small = busy_fraction_variance(32, runs, 900);
    let var_large = busy_fraction_variance(256, runs, 900);
    let ratio = var_small / var_large;
    // Structural window, not a CI: a sample variance over k runs has
    // relative error ~√(2/k) ≈ 20%, and the ratio of two compounds it,
    // so the window is set to exclude the competing scaling hypotheses
    // — "no scaling" (≈1) and "1/n²" (≈64) — rather than to 8 ± noise.
    assert!(
        (2.5..26.0).contains(&ratio),
        "variance ratio {ratio}: var(32) = {var_small:.2e}, var(256) = {var_large:.2e}"
    );
}

#[test]
fn mean_of_fluctuations_sits_on_the_trajectory() {
    use loadsteal::meanfield::models::{MeanFieldModel, SimpleWs};
    use loadsteal::meanfield::trajectory::sample_tails;

    let model = SimpleWs::new(0.8).unwrap();
    let ode = sample_tails(&model, &model.empty_state(), 20.0, 20.0).unwrap();
    let ode_busy = ode.last().unwrap().1[1];

    let mut cfg = SimConfig::paper_default(128, 0.8);
    cfg.horizon = 20.0;
    cfg.warmup = 0.0;
    cfg.snapshot_interval = Some(20.0);
    let stats: OnlineStats = (0..32u64)
        .map(|r| {
            run_seeded(&cfg, 2_000 + r)
                .snapshots
                .last()
                .map(|(_, t)| t[1])
                .unwrap()
        })
        .collect();
    // Same bound shape as the verify harness: Student-t CI half-width
    // across the pinned-seed replications plus an O(1/n) allowance for
    // the finite-n bias the CLT does not capture.
    let ci = stats.t_confidence_interval(loadsteal::verify::stat::CONFIDENCE_LEVEL);
    assert!(
        (stats.mean() - ode_busy).abs() < ci.half_width + 1.0 / 128.0,
        "sim mean {} vs ODE {} (99% CI ±{:.4})",
        stats.mean(),
        ode_busy,
        ci.half_width
    );
}
