#![allow(clippy::needless_range_loop)] // loop vars are occupancy levels

//! The tail law: simulated occupancy tails match the fixed-point tails,
//! and decay geometrically at the predicted "apparent service" ratio.
//!
//! Level-by-level agreement uses [`loadsteal::verify::stat`]'s
//! CI-width-derived bounds (Student-t interval over the pinned-seed
//! replications plus an O(1/n) finite-size allowance) instead of
//! hand-picked tolerances; dominance and decay-ratio checks keep
//! structural windows, documented inline.

use loadsteal::meanfield::fixed_point::{solve, FixedPointOptions};
use loadsteal::meanfield::models::{NoSteal, SimpleWs, ThresholdWs};
use loadsteal::sim::{replicate, SimConfig, StealPolicy};

fn simulate(lambda: f64, policy: StealPolicy) -> loadsteal::sim::ReplicateResult {
    let mut cfg = SimConfig::paper_default(128, lambda);
    cfg.horizon = 15_000.0;
    cfg.warmup = 1_500.0;
    cfg.policy = policy;
    replicate(&cfg, 4, 21)
}

/// Assert simulated tail `s_level` agrees with `predicted` within the
/// replications' own CI plus the n = 128 finite-size allowance.
fn assert_tail_agrees(rep: &loadsteal::sim::ReplicateResult, level: usize, predicted: f64) {
    let a = loadsteal::verify::stat::tail_agreement(&rep.runs, level, predicted, 128);
    assert!(a.holds(), "{}", a.describe());
}

#[test]
fn simple_ws_tails_match_fixed_point() {
    let lambda = 0.9;
    let rep = simulate(lambda, StealPolicy::simple_ws());
    let model = SimpleWs::new(lambda).unwrap();
    let tails = model.closed_form_tails();
    for i in 1..=6usize {
        assert_tail_agrees(&rep, i, tails.get(i));
    }
}

#[test]
fn stealing_tails_are_strictly_tighter_than_mm1() {
    let lambda = 0.9;
    let ws = simulate(lambda, StealPolicy::simple_ws()).mean_load_tails();
    let none = NoSteal::new(lambda).unwrap().closed_form_tails();
    // Structural dominance window: by level 4 the predicted WS tail is
    // several times smaller than M/M/1, so a 0.8 factor is decisive.
    for i in 3..=6usize {
        assert!(
            ws[i] < none.get(i) * 0.8,
            "s_{i}: WS sim {:.5} not tighter than M/M/1 {:.5}",
            ws[i],
            none.get(i)
        );
    }
}

#[test]
fn simulated_decay_ratio_matches_apparent_service_rate() {
    let lambda = 0.9;
    let sim = simulate(lambda, StealPolicy::simple_ws()).mean_load_tails();
    let model = SimpleWs::new(lambda).unwrap();
    let predicted = model.rho_prime();
    // Measure the empirical ratio over a mid-tail window where the
    // statistics are still good.
    let mut ratios = Vec::new();
    for i in 3..=6 {
        if sim[i] > 1e-3 {
            ratios.push(sim[i + 1] / sim[i]);
        }
    }
    let mean_ratio: f64 = ratios.iter().sum::<f64>() / ratios.len() as f64;
    // Structural window: the ratio of two noisy tails has no clean CI,
    // but at λ = 0.9 the WS ratio ρ' ≈ 0.85 differs from M/M/1's 0.9 by
    // 0.05, so this window still separates the hypotheses.
    assert!(
        (mean_ratio - predicted).abs() < 0.05,
        "measured ratio {mean_ratio:.4} vs ρ' = {predicted:.4}"
    );
}

#[test]
fn threshold_model_tails_match_below_and_above_t() {
    let lambda = 0.85;
    let threshold = 4;
    let rep = simulate(
        lambda,
        StealPolicy::OnEmpty {
            threshold,
            choices: 1,
            batch: 1,
        },
    );
    let tails = ThresholdWs::new(lambda, threshold)
        .unwrap()
        .closed_form_tails();
    for i in 1..=7usize {
        assert_tail_agrees(&rep, i, tails.get(i));
    }
}

#[test]
fn busy_fraction_equals_lambda_for_every_policy() {
    // Throughput balance in steady state: s₁ = λ regardless of policy.
    let lambda = 0.8;
    for policy in [
        StealPolicy::None,
        StealPolicy::simple_ws(),
        StealPolicy::OnEmpty {
            threshold: 4,
            choices: 2,
            batch: 2,
        },
        StealPolicy::Repeated {
            rate: 2.0,
            threshold: 2,
        },
    ] {
        let rep = simulate(lambda, policy.clone());
        assert_tail_agrees(&rep, 1, lambda);
    }
}

#[test]
fn fixed_point_solver_and_closed_form_agree_on_tails() {
    let m = SimpleWs::new(0.95).unwrap();
    let fp = solve(&m, &FixedPointOptions::default()).unwrap();
    let exact = m.closed_form_tails();
    for i in 1..=20usize {
        assert!(
            (fp.task_tails[i] - exact.get(i)).abs() < 1e-8,
            "level {i}: {} vs {}",
            fp.task_tails[i],
            exact.get(i)
        );
    }
}
