//! The paper's central validation: fixed points of the differential
//! equations predict finite-system simulations.
//!
//! Each test pits one mean-field model against the discrete-event
//! simulator at n = 128 (the paper's largest size). Agreement bounds
//! are not hand-picked percentages: [`loadsteal::verify::stat`]
//! derives each bound from the replications' own Student-t confidence
//! interval plus an O(1/n) finite-size allowance, so a test only fails
//! when the disagreement is statistically decisive. Seeds are pinned,
//! so failures replay exactly. Horizons are shorter than the paper's
//! 100,000 s to keep the suite fast; the CI widens to match.

use loadsteal::meanfield::fixed_point::{solve, FixedPointOptions};
use loadsteal::meanfield::models::{
    ErlangArrivals, ErlangStages, GeneralWs, Heterogeneous, MultiChoice, MultiSteal, NoSteal,
    Preemptive, Rebalance, RebalanceRateFn, RepeatedSteal, SimpleWs, ThresholdWs, TransferWs,
};
use loadsteal::queueing::ServiceDistribution;
use loadsteal::sim::{
    replicate, RebalanceRate, SimConfig, SpeedProfile, StealPolicy, TransferTime,
};

fn sim_cfg(lambda: f64, policy: StealPolicy) -> SimConfig {
    let mut cfg = SimConfig::paper_default(128, lambda);
    cfg.horizon = 12_000.0;
    cfg.warmup = 1_500.0;
    cfg.policy = policy;
    cfg
}

/// Assert the replications' mean sojourn time agrees with the
/// mean-field prediction within a CI-width-derived bound at n = 128.
fn assert_agrees(rep: &loadsteal::sim::ReplicateResult, predicted: f64, what: &str) {
    let a = loadsteal::verify::stat::sojourn_agreement(rep, predicted, 128);
    assert!(a.holds(), "{what}: {}", a.describe());
}

#[test]
fn no_steal_matches_mm1_field() {
    let lambda = 0.8;
    let rep = replicate(&sim_cfg(lambda, StealPolicy::None), 3, 1);
    let predicted = NoSteal::new(lambda).unwrap().closed_form_mean_time();
    assert_agrees(&rep, predicted, "no stealing, λ = 0.8");
}

#[test]
fn simple_ws_matches_table1_protocol() {
    let lambda = 0.9;
    let rep = replicate(&sim_cfg(lambda, StealPolicy::simple_ws()), 4, 2);
    let predicted = SimpleWs::new(lambda).unwrap().closed_form_mean_time();
    // Paper Table 1 at λ=0.9: Sim(128) = 3.586 vs estimate 3.541 (1.2%).
    assert_agrees(&rep, predicted, "simple WS, λ = 0.9");
}

#[test]
fn threshold_model_matches_simulation() {
    let lambda = 0.85;
    let policy = StealPolicy::OnEmpty {
        threshold: 4,
        choices: 1,
        batch: 1,
    };
    let rep = replicate(&sim_cfg(lambda, policy), 3, 3);
    let predicted = ThresholdWs::new(lambda, 4).unwrap().closed_form_mean_time();
    assert_agrees(&rep, predicted, "threshold T = 4, λ = 0.85");
}

#[test]
fn preemptive_model_matches_simulation() {
    let lambda = 0.85;
    let policy = StealPolicy::Preemptive {
        begin_at: 1,
        rel_threshold: 3,
    };
    let rep = replicate(&sim_cfg(lambda, policy), 3, 4);
    let m = Preemptive::new(lambda, 1, 3).unwrap();
    let predicted = solve(&m, &FixedPointOptions::default())
        .unwrap()
        .mean_time_in_system;
    assert_agrees(&rep, predicted, "preemptive B = 1, T = 3");
}

#[test]
fn repeated_attempts_match_simulation() {
    let lambda = 0.9;
    let policy = StealPolicy::Repeated {
        rate: 2.0,
        threshold: 2,
    };
    let rep = replicate(&sim_cfg(lambda, policy), 3, 5);
    let m = RepeatedSteal::new(lambda, 2.0, 2).unwrap();
    let predicted = solve(&m, &FixedPointOptions::default())
        .unwrap()
        .mean_time_in_system;
    assert_agrees(&rep, predicted, "repeated r = 2, λ = 0.9");
}

#[test]
fn erlang_stage_estimate_predicts_constant_service_sims() {
    // Table 2's protocol: simulate truly constant service, estimate with
    // a 20-stage Erlang fixed point.
    let lambda = 0.8;
    let mut cfg = sim_cfg(lambda, StealPolicy::simple_ws());
    cfg.service = ServiceDistribution::unit_deterministic();
    let rep = replicate(&cfg, 3, 6);
    let m = ErlangStages::new(lambda, 20).unwrap();
    let predicted = solve(&m, &FixedPointOptions::default())
        .unwrap()
        .mean_time_in_system;
    // Paper Table 2 at λ=0.8: Sim(128) = 2.013 vs c=20 estimate 2.039.
    assert_agrees(&rep, predicted, "constant service via 20 stages");
}

#[test]
fn transfer_model_matches_simulation() {
    let lambda = 0.8;
    let policy = StealPolicy::OnEmpty {
        threshold: 4,
        choices: 1,
        batch: 1,
    };
    let mut cfg = sim_cfg(lambda, policy);
    cfg.transfer = Some(TransferTime::exponential(0.25));
    let rep = replicate(&cfg, 3, 7);
    let m = TransferWs::new(lambda, 0.25, 4).unwrap();
    let predicted = solve(&m, &FixedPointOptions::default())
        .unwrap()
        .mean_time_in_system;
    // Paper Table 3 at λ=0.8, T=4: Sim(128) = 4.003 vs estimate 3.996.
    assert_agrees(&rep, predicted, "transfer r = 0.25, T = 4");
}

#[test]
fn multi_choice_matches_simulation() {
    let lambda = 0.9;
    let policy = StealPolicy::OnEmpty {
        threshold: 2,
        choices: 2,
        batch: 1,
    };
    let rep = replicate(&sim_cfg(lambda, policy), 3, 8);
    let m = MultiChoice::new(lambda, 2, 2).unwrap();
    let predicted = solve(&m, &FixedPointOptions::default())
        .unwrap()
        .mean_time_in_system;
    // Paper Table 4 at λ=0.9: Sim = 2.260 vs estimate 2.220.
    assert_agrees(&rep, predicted, "two choices, λ = 0.9");
}

#[test]
fn multi_steal_matches_simulation() {
    let lambda = 0.85;
    let policy = StealPolicy::OnEmpty {
        threshold: 6,
        choices: 1,
        batch: 3,
    };
    let rep = replicate(&sim_cfg(lambda, policy), 3, 9);
    let m = MultiSteal::new(lambda, 3, 6).unwrap();
    let predicted = solve(&m, &FixedPointOptions::default())
        .unwrap()
        .mean_time_in_system;
    assert_agrees(&rep, predicted, "multi-steal k = 3, T = 6");
}

#[test]
fn rebalance_matches_simulation() {
    let lambda = 0.8;
    let policy = StealPolicy::Rebalance {
        rate: RebalanceRate::Constant(0.5),
    };
    let rep = replicate(&sim_cfg(lambda, policy), 3, 10);
    let m = Rebalance::new(lambda, RebalanceRateFn::Constant(0.5)).unwrap();
    let predicted = solve(&m, &FixedPointOptions::default())
        .unwrap()
        .mean_time_in_system;
    assert_agrees(&rep, predicted, "rebalance r = 0.5, λ = 0.8");
}

#[test]
fn heterogeneous_matches_simulation() {
    // Half the processors run at rate 1.5, half at 0.8; λ = 0.9 exceeds
    // the slow class's own capacity, so stealing carries the surplus.
    let lambda = 0.9;
    let mut cfg = sim_cfg(lambda, StealPolicy::simple_ws());
    cfg.speeds = SpeedProfile::Classes(vec![(0.5, 1.5), (0.5, 0.8)]);
    let rep = replicate(&cfg, 3, 11);
    let m = Heterogeneous::new(lambda, 0.5, 1.5, 0.8, 2).unwrap();
    let predicted = solve(&m, &FixedPointOptions::default())
        .unwrap()
        .mean_time_in_system;
    assert_agrees(&rep, predicted, "heterogeneous 1.5/0.8");
}

#[test]
fn hyperexponential_service_matches_simulation() {
    use loadsteal::meanfield::models::HyperService;
    let lambda = 0.8;
    let m = HyperService::with_scv(lambda, 4.0, 2).unwrap();
    let (p, mu1, mu2) = m.branches();
    let mut cfg = sim_cfg(lambda, StealPolicy::simple_ws());
    cfg.service = loadsteal::queueing::ServiceDistribution::HyperExp {
        p,
        rate1: mu1,
        rate2: mu2,
    };
    let rep = replicate(&cfg, 3, 16);
    let predicted = solve(&m, &FixedPointOptions::default())
        .unwrap()
        .mean_time_in_system;
    assert_agrees(&rep, predicted, "hyperexponential service scv = 4");
}

#[test]
fn work_sharing_matches_simulation() {
    use loadsteal::meanfield::models::WorkSharing;
    let lambda = 0.9;
    let policy = StealPolicy::Share {
        send_threshold: 2,
        recv_threshold: 2,
    };
    let rep = replicate(&sim_cfg(lambda, policy), 3, 15);
    let m = WorkSharing::new(lambda, 2, 2).unwrap();
    let predicted = solve(&m, &FixedPointOptions::default())
        .unwrap()
        .mean_time_in_system;
    assert_agrees(&rep, predicted, "work sharing F = R = 2");
}

#[test]
fn general_combined_model_matches_simulation() {
    // All three knobs at once: T = 6, d = 2 choices, k = 3 tasks.
    let lambda = 0.9;
    let policy = StealPolicy::OnEmpty {
        threshold: 6,
        choices: 2,
        batch: 3,
    };
    let rep = replicate(&sim_cfg(lambda, policy), 3, 13);
    let m = GeneralWs::new(lambda, 6, 2, 3).unwrap();
    let predicted = solve(&m, &FixedPointOptions::default())
        .unwrap()
        .mean_time_in_system;
    assert_agrees(&rep, predicted, "general T=6, d=2, k=3");
}

#[test]
fn erlang_arrivals_match_simulation() {
    // Regularized (Erlang-10) arrival streams, simple stealing.
    let lambda = 0.9;
    let m = ErlangArrivals::new(lambda, 10, 2).unwrap();
    let mut cfg = sim_cfg(lambda, StealPolicy::simple_ws());
    cfg.arrival = Some(m.sim_arrival_distribution());
    let rep = replicate(&cfg, 3, 14);
    let predicted = solve(&m, &FixedPointOptions::default())
        .unwrap()
        .mean_time_in_system;
    assert_agrees(&rep, predicted, "Erlang-10 arrivals");
}

#[test]
fn transient_trajectory_matches_simulation() {
    // Kurtz's theorem is about trajectories, not just fixed points: the
    // ODE solution from the empty state tracks the simulated tails
    // through the whole transient.
    use loadsteal::meanfield::models::MeanFieldModel;
    use loadsteal::meanfield::trajectory::{sample_tails, sup_distance};
    let lambda = 0.9;
    let model = SimpleWs::new(lambda).unwrap();
    let ode = sample_tails(&model, &model.empty_state(), 40.0, 1.0).unwrap();

    let mut cfg = SimConfig::paper_default(512, lambda);
    cfg.horizon = 40.0;
    cfg.warmup = 0.0;
    cfg.snapshot_interval = Some(1.0);
    let mut err_sum = 0.0;
    let runs = 4;
    for r in 0..runs {
        let res = loadsteal::sim::run_seeded(&cfg, 500 + r);
        err_sum += sup_distance(&ode, &res.snapshots, 8);
    }
    let err = err_sum / runs as f64;
    // Structural bound, not a CI: Kurtz fluctuations scale like
    // 1/√n ≈ 0.044 at n = 512, and the window allows ~2× headroom.
    assert!(err < 0.1, "transient sup error {err} too large at n = 512");
}

#[test]
fn static_drain_time_matches_large_n_makespan() {
    use loadsteal::meanfield::models::{MeanFieldModel, RepeatedSteal};
    use loadsteal::meanfield::tail::TailVector;
    use loadsteal::meanfield::trajectory::drain_time;
    let initial = 20;
    // Mean-field counterpart of the simulated policy (repeated attempts
    // at rate 8) with a vanishing arrival rate; the n-processor makespan
    // corresponds to the mean-field time at which less than one
    // processor's worth of busy mass remains (ε = 1/n).
    let model = RepeatedSteal::new(1e-9, 8.0, 2)
        .unwrap()
        .with_truncation(4 * initial);
    let start = TailVector::uniform_load(initial, 4 * initial).into_vec();
    let predicted = drain_time(&model, &start, 1.0 / 256.0, 1e5).unwrap();

    let mut cfg = SimConfig::paper_default(256, 0.0);
    cfg.lambda = 0.0;
    cfg.run_until_drained = true;
    cfg.initial_load = initial;
    cfg.warmup = 0.0;
    cfg.policy = StealPolicy::Repeated {
        rate: 8.0,
        threshold: 2,
    };
    let sim = replicate(&cfg, 5, 12).makespan_mean.mean();
    // Structural bound, not a CI: the two "done" notions (simulated
    // last completion vs mean-field mass dropping below ε = 1/n) are
    // only heuristically matched, so the window is modeling error, not
    // sampling noise. The simulated policy retries aggressively,
    // approximating the mean-field's idealized leveling.
    let err = (sim - predicted).abs() / predicted;
    assert!(
        err < 0.15,
        "drain: sim {sim:.2} vs mean-field {predicted:.2} ({:.1}%)",
        100.0 * err
    );
}
