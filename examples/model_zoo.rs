//! The whole model zoo on one screen.
//!
//! Solves every mean-field family in the crate at a common arrival rate
//! and prints its mean time in system, busy fraction, and tail decay
//! ratio — a quick map of how the paper's design knobs trade off.
//!
//! Run with: `cargo run --release --example model_zoo`

use loadsteal::meanfield::fixed_point::{solve, FixedPointOptions};
use loadsteal::meanfield::models::*;

fn main() {
    let lambda = 0.9;
    let opts = FixedPointOptions::default();
    println!("All models at λ = {lambda}:\n");
    println!(
        "{:<52} {:>8} {:>8} {:>10}",
        "model", "W", "s₁", "tail ratio"
    );
    println!("{}", "-".repeat(80));

    macro_rules! row {
        ($m:expr) => {{
            let m = $m;
            let fp = solve(&m, &opts).expect("fixed point");
            println!(
                "{:<52} {:>8.3} {:>8.4} {:>10.4}",
                m.name(),
                fp.mean_time_in_system,
                fp.task_tails[1],
                fp.tail_ratio().unwrap_or(f64::NAN),
            );
        }};
    }

    row!(NoSteal::new(lambda).unwrap());
    row!(SimpleWs::new(lambda).unwrap());
    row!(ThresholdWs::new(lambda, 4).unwrap());
    row!(Preemptive::new(lambda, 1, 3).unwrap());
    row!(RepeatedSteal::new(lambda, 2.0, 2).unwrap());
    row!(ErlangStages::new(lambda, 10).unwrap());
    row!(ErlangArrivals::new(lambda, 10, 2).unwrap());
    row!(TransferWs::new(lambda, 0.25, 4).unwrap());
    row!(MultiChoice::new(lambda, 2, 2).unwrap());
    row!(MultiSteal::new(lambda, 3, 6).unwrap());
    row!(GeneralWs::new(lambda, 6, 2, 3).unwrap());
    row!(Rebalance::new(lambda, RebalanceRateFn::Constant(1.0)).unwrap());
    row!(Heterogeneous::new(lambda, 0.5, 1.5, 0.8, 2).unwrap());
    row!(HyperService::with_scv(lambda, 4.0, 2).unwrap());
    row!(WorkSharing::new(lambda, 2, 2).unwrap());

    println!("\nReading guide: lower W is better; the no-steal row is the M/M/1");
    println!(
        "baseline W = 1/(1−λ) = {:.1}; every stealing variant tightens the",
        1.0 / (1.0 - lambda)
    );
    println!("tail ratio below λ = {lambda}.");
}
