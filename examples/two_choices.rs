//! The power of two choices — for thieves (the Table 4 scenario).
//!
//! In load *sharing*, letting an arriving task pick the shorter of two
//! random queues improves the maximum load exponentially. Here the
//! analogous idea — a thief samples d victims and robs the most loaded —
//! helps, but far less dramatically: one random victim already captures
//! most of the available gain, because steals (unlike arrivals) only
//! happen when they are useful. This example quantifies that with the
//! mean-field fixed points and checks them against simulation.
//!
//! Run with: `cargo run --release --example two_choices`

use loadsteal::meanfield::fixed_point::{solve, FixedPointOptions};
use loadsteal::meanfield::models::MultiChoice;
use loadsteal::sim::{replicate, SimConfig, StealPolicy};

fn main() {
    let opts = FixedPointOptions::default();
    let lambdas = [0.50, 0.70, 0.80, 0.90, 0.95, 0.99];

    println!("Mean time in system, victim threshold T = 2:");
    println!(
        "{:>6} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "λ", "est d=1", "est d=2", "est d=4", "sim d=1", "sim d=2"
    );
    for lambda in lambdas {
        let est: Vec<f64> = [1u32, 2, 4]
            .iter()
            .map(|&d| {
                let m = MultiChoice::new(lambda, d, 2).expect("valid");
                solve(&m, &opts).expect("fixed point").mean_time_in_system
            })
            .collect();

        let sim = |choices: usize| {
            let mut cfg = SimConfig::paper_default(128, lambda);
            cfg.horizon = 10_000.0;
            cfg.warmup = 1_000.0;
            cfg.policy = StealPolicy::OnEmpty {
                threshold: 2,
                choices,
                batch: 1,
            };
            replicate(&cfg, 3, 7).mean_sojourn()
        };

        println!(
            "{lambda:>6.2} {:>12.3} {:>12.3} {:>12.3} {:>12.3} {:>12.3}",
            est[0],
            est[1],
            est[2],
            sim(1),
            sim(2)
        );
    }
    println!("\nTwo choices help most at high λ, but d = 1 already gets most of the gain");
    println!("(and more choices cost more probes in a real system).");
}
