//! Threshold tuning under transfer delays (the Table 3 scenario).
//!
//! When a stolen task takes Exp(1/r) time to move, stealing from a
//! victim with barely more than one task is counterproductive: the task
//! would likely finish at the victim before it even arrives at the
//! thief. A rule of thumb says the victim threshold should satisfy
//! `T ≈ 1/r + 1`, but the fixed points of the differential equations
//! pick the *actual* best threshold for each arrival rate — which grows
//! past the rule of thumb as the system gets busy.
//!
//! Run with: `cargo run --release --example threshold_tuning`

use loadsteal::meanfield::fixed_point::{solve, FixedPointOptions};
use loadsteal::meanfield::models::TransferWs;

fn main() {
    let rate = 0.25; // mean transfer time 1/r = 4 service times
    let thresholds = [2usize, 3, 4, 5, 6, 7, 8];
    let lambdas = [0.50, 0.70, 0.80, 0.90, 0.95];
    let opts = FixedPointOptions::default();

    println!(
        "Mean time in system with transfer rate r = {rate} (mean delay {}):",
        1.0 / rate
    );
    print!("{:>6}", "λ \\ T");
    for t in thresholds {
        print!("{t:>9}");
    }
    println!("{:>9}", "best T");

    for lambda in lambdas {
        print!("{lambda:>6.2}");
        let mut best = (0usize, f64::INFINITY);
        let mut row = Vec::new();
        for t in thresholds {
            let model = TransferWs::new(lambda, rate, t).expect("valid parameters");
            let w = solve(&model, &opts)
                .expect("fixed point")
                .mean_time_in_system;
            if w < best.1 {
                best = (t, w);
            }
            row.push(w);
        }
        for w in row {
            print!("{w:>9.3}");
        }
        println!("{:>9}", best.0);
    }

    println!(
        "\nRule of thumb T ≈ 1/r + 1 = {:.0}; the equations show the best\n\
         threshold drifting higher as λ grows (matching the paper's Table 3).",
        1.0 / rate + 1.0
    );
}
