//! Static systems — Section 3.5: drain a pre-loaded system to empty.
//!
//! Start every processor with `m₀` tasks, shut off external arrivals,
//! and let work stealing level the end-game. For large `n` the
//! differential equations predict the drain profile; this example
//! compares the predicted drain time against simulated makespans for
//! n = 32 and n = 256, with and without stealing.
//!
//! Run with: `cargo run --release --example static_drain`

use loadsteal::meanfield::models::StaticDrain;
use loadsteal::sim::{replicate, SimConfig, StealPolicy};

fn simulate(n: usize, initial: usize, policy: StealPolicy) -> f64 {
    let mut cfg = SimConfig::paper_default(n, 0.0);
    cfg.lambda = 0.0;
    cfg.run_until_drained = true;
    cfg.initial_load = initial;
    cfg.warmup = 0.0;
    cfg.policy = policy;
    let r = replicate(&cfg, 5, 99);
    r.makespan_mean.mean()
}

fn main() {
    let initial = 20;
    println!("Draining a static system: {initial} unit-mean tasks per processor.\n");

    let model = StaticDrain::new(0.0, 0.0, 4 * initial).expect("valid");
    let predicted = model.drain_time(initial, 1e-4, 1e5).expect("drains");
    println!("mean-field prediction (n → ∞): work drains at t ≈ {predicted:.1}");
    println!("(total work per processor = {initial}, so stealing ≈ perfect leveling)\n");

    println!(
        "{:>6} {:>22} {:>22}",
        "n", "makespan (no steal)", "makespan (repeated WS)"
    );
    for n in [32usize, 256] {
        let none = simulate(n, initial, StealPolicy::None);
        let ws = simulate(
            n,
            initial,
            StealPolicy::Repeated {
                rate: 4.0,
                threshold: 2,
            },
        );
        println!("{n:>6} {none:>22.1} {ws:>22.1}");
    }
    println!(
        "\nWithout stealing the makespan is the maximum of n independent sums\n\
         (≈ {initial} + O(√{initial} · √(2 ln n))); with stealing it approaches the\n\
         mean-field drain time as n grows."
    );
}
