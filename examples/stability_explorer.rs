//! Stability explorer — Section 4 of the paper, numerically.
//!
//! Theorem 1 proves that the L₁ distance to the fixed point never
//! increases when `π₂ < 1/2`, i.e. for `λ < (1+√5)/4 ≈ 0.809`. Beyond
//! that the paper suggests convincing oneself numerically from varied
//! starting points. This example does exactly that: it launches
//! trajectories from empty, uniformly loaded, and geometric starting
//! states at several arrival rates, and reports whether `D(t)` ever
//! increased and when the trajectory entered a small neighbourhood of
//! the fixed point.
//!
//! Run with: `cargo run --release --example stability_explorer`

use loadsteal::meanfield::fixed_point::{solve, FixedPointOptions};
use loadsteal::meanfield::models::{MeanFieldModel, SimpleWs};
use loadsteal::meanfield::stability::{
    check_l1_contraction, simple_ws_stability_threshold, theorem_condition_holds,
};
use loadsteal::meanfield::tail::TailVector;

fn main() {
    println!(
        "Theorem 1 guarantees monotone L₁ contraction for λ < λ* = {:.6}\n",
        simple_ws_stability_threshold()
    );

    println!(
        "{:>6} {:>10} {:>16} {:>14} {:>14} {:>12}",
        "λ", "π₂<1/2?", "start", "initial D", "max increase", "t to D<1e-6"
    );
    for lambda in [0.5, 0.7, 0.809, 0.9, 0.95, 0.99] {
        let model = SimpleWs::new(lambda).expect("valid λ");
        let fp = solve(&model, &FixedPointOptions::default()).expect("fixed point");
        let levels = model.truncation();
        let starts: Vec<(&str, Vec<f64>)> = vec![
            ("empty", model.empty_state()),
            (
                "uniform load 4",
                TailVector::uniform_load(4, levels).into_vec(),
            ),
            (
                "geometric 0.95",
                TailVector::geometric(0.95, levels).into_vec(),
            ),
        ];
        for (name, start) in starts {
            let report = check_l1_contraction(&model, &start, &fp.state, 1e-6, 50_000.0)
                .expect("integration");
            println!(
                "{lambda:>6.3} {:>10} {name:>16} {:>14.4} {:>14.2e} {:>12}",
                if theorem_condition_holds(lambda) {
                    "yes"
                } else {
                    "no"
                },
                report.initial_distance,
                report.max_increase,
                report
                    .converged_at
                    .map(|t| format!("{t:.1}"))
                    .unwrap_or_else(|| "—".into()),
            );
        }
    }
    println!("\nEven beyond the provable regime the trajectories contract monotonically —");
    println!("the open problem is the proof, not the behaviour.");
}
