//! Transient behaviour: the ODEs describe the whole trajectory, not just
//! the fixed point.
//!
//! Starts an empty system at λ = 0.9, integrates the mean-field
//! equations, and overlays the simulated busy fraction `s₁(t)` and
//! two-task tail `s₂(t)` for n = 64 and n = 512 — the finite systems
//! hug the deterministic trajectory with `O(1/√n)` fluctuations
//! (Kurtz's theorem, which underwrites every table in the paper).
//!
//! Run with: `cargo run --release --example transient`

use loadsteal::meanfield::models::{MeanFieldModel, SimpleWs};
use loadsteal::meanfield::trajectory::sample_tails;
use loadsteal::sim::{run_seeded, SimConfig};

fn main() {
    let lambda = 0.9;
    let horizon = 30.0;
    let dt = 2.0;

    let model = SimpleWs::new(lambda).expect("valid λ");
    let ode = sample_tails(&model, &model.empty_state(), horizon, dt).expect("trajectory");

    let sim_traj = |n: usize| {
        let mut cfg = SimConfig::paper_default(n, lambda);
        cfg.horizon = horizon;
        cfg.warmup = 0.0;
        cfg.snapshot_interval = Some(dt);
        run_seeded(&cfg, 2024).snapshots
    };
    let sim64 = sim_traj(64);
    let sim512 = sim_traj(512);

    println!("Growing from empty at λ = {lambda}: s₁(t) (busy fraction)\n");
    println!(
        "{:>6} {:>10} {:>10} {:>10}   {:>10} {:>10} {:>10}",
        "t", "ODE s₁", "n=64", "n=512", "ODE s₂", "n=64", "n=512"
    );
    for (k, (t, tails)) in ode.iter().enumerate() {
        let g = |traj: &[(f64, Vec<f64>)], i: usize| {
            traj.get(k)
                .and_then(|(_, s)| s.get(i))
                .copied()
                .unwrap_or(f64::NAN)
        };
        println!(
            "{t:>6.1} {:>10.4} {:>10.4} {:>10.4}   {:>10.4} {:>10.4} {:>10.4}",
            tails[1],
            g(&sim64, 1),
            g(&sim512, 1),
            tails[2],
            g(&sim64, 2),
            g(&sim512, 2),
        );
    }
    println!(
        "\nfixed point: s₁ → {lambda}, s₂ → {:.4}; the n = 512 column sticks ~2× closer\n\
         to the ODE than n = 64 (fluctuations shrink like 1/√n).",
        model.pi2()
    );
}
