//! Quickstart: the paper's headline result in one page.
//!
//! Builds the simple work-stealing mean-field model, computes its fixed
//! point in closed form and numerically, compares the predicted mean
//! time in system against a discrete-event simulation with 128
//! processors, and shows the geometric tail law.
//!
//! Run with: `cargo run --release --example quickstart`

use loadsteal::meanfield::fixed_point::{solve, FixedPointOptions};
use loadsteal::meanfield::models::{MeanFieldModel, NoSteal, SimpleWs};
use loadsteal::sim::{replicate, SimConfig};

fn main() {
    let lambda = 0.9;
    println!("== loadsteal quickstart: simple work stealing at λ = {lambda} ==\n");

    // 1. The mean-field model and its closed-form fixed point.
    let model = SimpleWs::new(lambda).expect("valid λ");
    println!("model: {}", model.name());
    println!("  π₂ (fraction with ≥ 2 tasks)   = {:.6}", model.pi2());
    println!(
        "  tail ratio ρ' = λ/(1+λ−π₂)     = {:.6}",
        model.rho_prime()
    );
    println!(
        "  closed-form mean time in system = {:.4}",
        model.closed_form_mean_time()
    );

    // 2. The numeric pipeline (integrate the ODEs to steady state, then
    //    Newton-polish) agrees to many digits.
    let fp = solve(&model, &FixedPointOptions::default()).expect("fixed point");
    println!(
        "  numeric mean time in system     = {:.4} (residual {:.1e})",
        fp.mean_time_in_system, fp.residual
    );

    // 3. A finite system with 128 processors behaves as predicted.
    let mut cfg = SimConfig::paper_default(128, lambda);
    cfg.horizon = 20_000.0; // the paper uses 100,000 s and 10 runs
    cfg.warmup = 2_000.0;
    let sim = replicate(&cfg, 5, 42);
    let ci = sim.sojourn_ci();
    println!(
        "\nsimulation (n = 128, 5 runs): {:.4} ± {:.4}",
        ci.mean, ci.half_width
    );
    println!(
        "prediction error: {:.2}%",
        100.0 * (ci.mean - fp.mean_time_in_system).abs() / ci.mean
    );

    // 4. The tail law: stealing beats independent M/M/1 queues.
    let baseline = NoSteal::new(lambda).expect("valid λ");
    println!("\ntails (fraction of processors with ≥ i tasks):");
    println!(
        "{:>4} {:>12} {:>12} {:>12}",
        "i", "no steal", "simple WS", "sim (128)"
    );
    let tails = sim.mean_load_tails();
    for i in 1..=8usize {
        println!(
            "{i:>4} {:>12.6} {:>12.6} {:>12.6}",
            baseline.closed_form_tails().get(i),
            fp.task_tails.get(i).copied().unwrap_or(0.0),
            tails.get(i).copied().unwrap_or(0.0),
        );
    }
    println!(
        "\nBoth tails are geometric, but stealing decays at {:.4} < λ = {lambda}.",
        model.rho_prime()
    );
}
